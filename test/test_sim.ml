(* Tests for nf_sim: queue disciplines, price engines, the protocol
   registry, and end-to-end packet-level behaviour of all transports. *)

module Packet = Nf_sim.Packet
module Queue_disc = Nf_sim.Queue_disc
module Price_engine = Nf_sim.Price_engine
module Network = Nf_sim.Network
module Builders = Nf_topo.Builders
module Utility = Nf_num.Utility
module Fcmp = Nf_util.Fcmp

let proto = Nf_sim.Protocols.get

let quick name f = Alcotest.test_case name `Quick f

let check_rate what ~frac expected actual =
  if not (Fcmp.within_fraction ~frac ~actual ~target:expected) then
    Alcotest.failf "%s: expected %.3g within %g%%, got %.3g" what expected
      (100. *. frac) actual

let mk ?(flow = 0) ?(seq = 0) ?(size = 1500) ?(vpl = 1500.) ?(prio = infinity) () =
  let p = Packet.make_data ~flow ~seq ~size ~path:[| 0 |] ~now:0. in
  p.Packet.virtual_packet_len <- vpl;
  p.Packet.priority <- prio;
  p

(* ------------------------------------------------------------------ *)
(* Queue disciplines *)

let test_fifo_order_and_drop () =
  let q = Queue_disc.fifo ~limit_bytes:4000 () in
  Alcotest.(check bool) "e1" true (q.Queue_disc.enqueue (mk ~seq:1 ()));
  Alcotest.(check bool) "e2" true (q.Queue_disc.enqueue (mk ~seq:2 ()));
  Alcotest.(check bool) "e3 dropped (over limit)" false
    (q.Queue_disc.enqueue (mk ~seq:3 ()));
  Alcotest.(check int) "drops" 1 (q.Queue_disc.drops ());
  Alcotest.(check int) "bytes" 3000 (q.Queue_disc.byte_length ());
  (match q.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "FIFO head" 1 p.Packet.seq
  | None -> Alcotest.fail "empty");
  Alcotest.(check int) "bytes after dequeue" 1500 (q.Queue_disc.byte_length ())

let test_ecn_marking () =
  let q = Queue_disc.ecn_fifo ~mark_threshold_bytes:2000 () in
  let p1 = mk ~seq:1 () and p2 = mk ~seq:2 () and p3 = mk ~seq:3 () in
  ignore (q.Queue_disc.enqueue p1);
  ignore (q.Queue_disc.enqueue p2);
  ignore (q.Queue_disc.enqueue p3);
  Alcotest.(check bool) "first unmarked" false p1.Packet.ecn;
  Alcotest.(check bool) "second unmarked (at 1500 <= K)" false p2.Packet.ecn;
  Alcotest.(check bool) "third marked (3000 > K)" true p3.Packet.ecn

let test_stfq_weighted_service () =
  let q = Queue_disc.stfq () in
  (* Flow 0 has weight 1 (vpl 1500), flow 1 weight 3 (vpl 500). *)
  for i = 0 to 11 do
    ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:i ~vpl:1500. ()));
    ignore (q.Queue_disc.enqueue (mk ~flow:1 ~seq:i ~vpl:500. ()))
  done;
  let served = Array.make 2 0 in
  for _ = 1 to 12 do
    match q.Queue_disc.dequeue () with
    | Some p -> served.(p.Packet.flow) <- served.(p.Packet.flow) + 1
    | None -> Alcotest.fail "queue empty early"
  done;
  (* In 12 services the 3:1 weights should give roughly 9:3. *)
  Alcotest.(check bool) "weighted service ratio" true
    (served.(1) >= 8 && served.(1) <= 10)

let test_stfq_control_packets_jump () =
  let q = Queue_disc.stfq () in
  for i = 0 to 5 do
    ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:i ~vpl:1500. ()))
  done;
  (* A control packet (vpl = 0) enqueued last should be served at the
     current virtual time, i.e. before most queued data. *)
  let ack = Packet.make_ack ~data:(mk ~flow:7 ()) ~path:[| 0 |] ~now:0. in
  ignore (q.Queue_disc.enqueue ack);
  ignore (q.Queue_disc.dequeue ());
  (* after one data service, V > 0 *)
  match q.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "ack served promptly" 7 p.Packet.flow
  | None -> Alcotest.fail "empty"

let test_stfq_per_flow_order () =
  let q = Queue_disc.stfq () in
  for i = 0 to 9 do
    ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:i ~vpl:(1500. /. float_of_int (1 + i)) ()))
  done;
  let last = ref (-1) in
  let ok = ref true in
  for _ = 1 to 10 do
    match q.Queue_disc.dequeue () with
    | Some p ->
      if p.Packet.seq <> !last + 1 then ok := false;
      last := p.Packet.seq
    | None -> ok := false
  done;
  Alcotest.(check bool) "packets of one flow stay in order" true !ok

let test_dequeue_exn_matches_dequeue () =
  (* [dequeue_exn] is the allocation-free twin the transmit loop uses:
     same service order as [dequeue], Invalid_argument on empty. *)
  List.iter
    (fun (name, make_q) ->
      let q = make_q () in
      for i = 0 to 7 do
        ignore
          (q.Queue_disc.enqueue
             (mk ~flow:(i mod 3) ~seq:i ~vpl:(500. *. float_of_int (1 + (i mod 4))) ())
            : bool)
      done;
      let q' = make_q () in
      for i = 0 to 7 do
        ignore
          (q'.Queue_disc.enqueue
             (mk ~flow:(i mod 3) ~seq:i ~vpl:(500. *. float_of_int (1 + (i mod 4))) ())
            : bool)
      done;
      for n = 1 to 8 do
        match q.Queue_disc.dequeue () with
        | None -> Alcotest.failf "%s: empty after %d services" name (n - 1)
        | Some expected ->
            let got = q'.Queue_disc.dequeue_exn () in
            Alcotest.(check int)
              (Printf.sprintf "%s: service %d same flow" name n)
              expected.Packet.flow got.Packet.flow;
            Alcotest.(check int)
              (Printf.sprintf "%s: service %d same seq" name n)
              expected.Packet.seq got.Packet.seq
      done;
      Alcotest.(check int)
        (Printf.sprintf "%s: bytes drained" name)
        0
        (q'.Queue_disc.byte_length ());
      Alcotest.check_raises
        (Printf.sprintf "%s: dequeue_exn on empty" name)
        (Invalid_argument "Queue_disc.dequeue_exn: empty queue")
        (fun () -> ignore (q'.Queue_disc.dequeue_exn () : Packet.t)))
    [
      ("fifo", fun () -> Queue_disc.fifo ~limit_bytes:100_000 ());
      ("ecn_fifo", fun () -> Queue_disc.ecn_fifo ~mark_threshold_bytes:3000 ());
      ("stfq", fun () -> Queue_disc.stfq ());
      ("pfabric", fun () -> Queue_disc.pfabric ~limit_bytes:100_000 ());
    ]

let test_stfq_flow_table_growth () =
  (* STFQ's finish tags live in a growable array indexed by flow id; a
     large id must grow the table, not crash, and ids never seen before
     start at finish tag 0 (served at the current virtual time). *)
  let q = Queue_disc.stfq () in
  ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:0 ~vpl:1500. ()) : bool);
  ignore (q.Queue_disc.dequeue_exn () : Packet.t);
  (* Flow 0 now owes virtual time (finish tag 1500); a brand-new large id
     starts at tag 0 and must be served first. *)
  ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:1 ~vpl:1500. ()) : bool);
  ignore (q.Queue_disc.enqueue (mk ~flow:5000 ~seq:0 ~vpl:1500. ()) : bool);
  let first = q.Queue_disc.dequeue_exn () in
  let second = q.Queue_disc.dequeue_exn () in
  Alcotest.(check int) "new large flow id served first" 5000 first.Packet.flow;
  Alcotest.(check int) "backlogged flow served second" 0 second.Packet.flow;
  Alcotest.check_raises "negative flow id rejected"
    (Invalid_argument "Queue_disc.stfq: negative flow id") (fun () ->
      ignore (q.Queue_disc.enqueue (mk ~flow:(-1) ()) : bool))

let test_pfabric_priority () =
  let q = Queue_disc.pfabric ~limit_bytes:6000 () in
  ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:0 ~prio:9000. ()));
  ignore (q.Queue_disc.enqueue (mk ~flow:1 ~seq:0 ~prio:3000. ()));
  ignore (q.Queue_disc.enqueue (mk ~flow:2 ~seq:0 ~prio:6000. ()));
  (match q.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "smallest remaining first" 1 p.Packet.flow
  | None -> Alcotest.fail "empty");
  (* Fill up, then a higher-priority (smaller) arrival evicts the worst. *)
  ignore (q.Queue_disc.enqueue (mk ~flow:3 ~seq:0 ~prio:7000. ()));
  ignore (q.Queue_disc.enqueue (mk ~flow:4 ~seq:0 ~prio:8000. ()));
  Alcotest.(check int) "full" 4 (q.Queue_disc.packet_count ());
  Alcotest.(check bool) "urgent arrival accepted" true
    (q.Queue_disc.enqueue (mk ~flow:5 ~seq:0 ~prio:100. ()));
  Alcotest.(check int) "one drop" 1 (q.Queue_disc.drops ());
  (* Flow 0 (prio 9000) must be the one that was evicted. *)
  let seen = ref [] in
  let rec drain () =
    match q.Queue_disc.dequeue () with
    | Some p ->
      seen := p.Packet.flow :: !seen;
      drain ()
    | None -> ()
  in
  drain ();
  Alcotest.(check bool) "worst evicted" false (List.mem 0 !seen)

let test_pfabric_same_flow_in_order () =
  let q = Queue_disc.pfabric () in
  (* Later packets of a flow carry smaller remaining size; dequeue must
     still deliver the earliest packet of that flow first. *)
  ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:0 ~prio:9000. ()));
  ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:1 ~prio:7500. ()));
  ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:2 ~prio:6000. ()));
  match q.Queue_disc.dequeue () with
  | Some p -> Alcotest.(check int) "earliest of the flow" 0 p.Packet.seq
  | None -> Alcotest.fail "empty"

let test_stfq_weight_change_ordering () =
  (* Start tags are S = max(V, F_prev(flow)); a mid-stream weight change
     (vpl 1500 -> 500 on flow 1) affects only the tags assigned after it.
     With everything enqueued at V = 0:
       flow 0 (vpl 1500 throughout):        S = 0, 1500, 3000, 4500
       flow 1 (vpl 1500, 1500 then 500, 500): S = 0, 1500, 3000, 3500
     so flow 1's last packet must be served before flow 0's last, while
     each flow's packets still leave in sequence order. *)
  let q = Queue_disc.stfq () in
  for i = 0 to 3 do
    ignore (q.Queue_disc.enqueue (mk ~flow:0 ~seq:i ~vpl:1500. ()));
    let vpl = if i < 2 then 1500. else 500. in
    ignore (q.Queue_disc.enqueue (mk ~flow:1 ~seq:i ~vpl ()))
  done;
  let served = ref [] in
  let rec drain () =
    match q.Queue_disc.dequeue () with
    | Some p ->
      served := (p.Packet.flow, p.Packet.seq) :: !served;
      drain ()
    | None -> ()
  in
  drain ();
  let served = List.rev !served in
  Alcotest.(check int) "all served" 8 (List.length served);
  let pos x =
    let rec go i = function
      | [] -> Alcotest.failf "packet (%d, %d) never served" (fst x) (snd x)
      | y :: _ when y = x -> i
      | _ :: tl -> go (i + 1) tl
    in
    go 0 served
  in
  Alcotest.(check bool) "re-weighted flow finishes first" true
    (pos (1, 3) < pos (0, 3));
  List.iter
    (fun f ->
      let seqs =
        List.filter_map (fun (fl, s) -> if fl = f then Some s else None) served
      in
      Alcotest.(check (list int))
        (Printf.sprintf "flow %d in order" f)
        [ 0; 1; 2; 3 ] seqs)
    [ 0; 1 ]

let test_fifo_drop_accounting () =
  (* Both FIFO variants count every rejected packet and never hold more
     than limit_bytes. 10 x 1500 B against a 6000 B limit: 4 fit. *)
  List.iter
    (fun (label, q) ->
      let accepted = ref 0 in
      for i = 1 to 10 do
        if q.Queue_disc.enqueue (mk ~seq:i ()) then incr accepted
      done;
      Alcotest.(check int) (label ^ ": accepted") 4 !accepted;
      Alcotest.(check int) (label ^ ": drops") 6 (q.Queue_disc.drops ());
      Alcotest.(check bool) (label ^ ": within limit") true
        (q.Queue_disc.byte_length () <= 6000))
    [
      ("fifo", Queue_disc.fifo ~limit_bytes:6000 ());
      ("ecn_fifo", Queue_disc.ecn_fifo ~limit_bytes:6000 ~mark_threshold_bytes:3000 ());
    ]

let test_drops_counter_monotone () =
  (* The drops counter never decreases (dequeues must not "refund" drops)
     and ends exactly equal to the number of rejected enqueues. *)
  let q = Queue_disc.fifo ~limit_bytes:3000 () in
  let rejected = ref 0 in
  let last = ref 0 in
  for i = 1 to 30 do
    if not (q.Queue_disc.enqueue (mk ~seq:i ())) then incr rejected;
    let d = q.Queue_disc.drops () in
    Alcotest.(check bool) "monotone" true (d >= !last);
    last := d;
    if i mod 3 = 0 then ignore (q.Queue_disc.dequeue ())
  done;
  Alcotest.(check int) "drops = rejections" !rejected (q.Queue_disc.drops ());
  Alcotest.(check bool) "some drops happened" true (!rejected > 0)

(* ------------------------------------------------------------------ *)
(* Price engines *)

let test_xwi_engine_stamps () =
  let e = Price_engine.xwi ~capacity:1e10 () in
  (* Push the price up via a positive residual at full utilization. *)
  let fill () =
    (* one update interval worth of bytes: 30us * 10G / 8 = 37500 B *)
    for _ = 1 to 25 do
      let p = mk () in
      p.Packet.normalized_residual <- 1e-10;
      e.Price_engine.on_enqueue p;
      e.Price_engine.on_dequeue p
    done
  in
  fill ();
  e.Price_engine.update ();
  let price1 = e.Price_engine.value () in
  Alcotest.(check bool) "price rose" true (price1 > 0.);
  let p = mk () in
  e.Price_engine.on_dequeue p;
  Alcotest.(check (float 1e-30)) "price stamped" price1 p.Packet.path_price;
  Alcotest.(check int) "path len incremented" 1 p.Packet.path_len;
  (* With no traffic the price decays. *)
  e.Price_engine.update ();
  e.Price_engine.update ();
  Alcotest.(check bool) "idle decay" true (e.Price_engine.value () < price1)

let test_dgd_engine_overload () =
  let queue = ref 0 in
  let e =
    Price_engine.dgd ~capacity:1e10 ~queue_bytes:(fun () -> !queue)
      ~price_scale:1e-10 ()
  in
  (* Overload: more than 16us * 10G / 8 = 20000 bytes serviced. *)
  for _ = 1 to 20 do
    e.Price_engine.on_dequeue (mk ())
  done;
  queue := 10_000;
  e.Price_engine.update ();
  Alcotest.(check bool) "price rises under overload" true (e.Price_engine.value () > 0.)

let test_rcp_engine () =
  let queue = ref 0 in
  let e =
    Price_engine.rcp ~alpha:1. ~capacity:1e10 ~queue_bytes:(fun () -> !queue)
      ~initial_fair_rate:5e9 ()
  in
  (* Idle: fair rate should grow. *)
  e.Price_engine.update ();
  Alcotest.(check bool) "fair rate grows when idle" true (e.Price_engine.value () > 5e9);
  (* Heavy overload shrinks it. *)
  let r = e.Price_engine.value () in
  for _ = 1 to 40 do
    e.Price_engine.on_dequeue (mk ())
  done;
  queue := 100_000;
  e.Price_engine.update ();
  Alcotest.(check bool) "fair rate shrinks under overload" true
    (e.Price_engine.value () < r)

(* ------------------------------------------------------------------ *)
(* End-to-end networks *)

let rate net id =
  match Network.measured_rate net id with
  | Some r -> r
  | None -> Alcotest.failf "flow %d: no rate measured" id

let test_numfabric_single_bottleneck () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  let u = Utility.proportional_fair () in
  Array.iteri
    (fun i s ->
      Network.add_flow net
        (Network.flow ~utility:u ~id:i ~src:s ~dst:sb.Builders.receiver ()))
    sb.Builders.senders;
  Network.run net ~until:3e-3;
  check_rate "flow 0" ~frac:0.05 5e9 (rate net 0);
  check_rate "flow 1" ~frac:0.05 5e9 (rate net 1);
  Alcotest.(check int) "no drops" 0 (Network.total_drops net);
  (* Small standing queue (a few packets), not a full buffer. *)
  Alcotest.(check bool) "small queue" true
    (Network.queue_bytes net ~link:sb.Builders.bottleneck < 30_000)

let test_numfabric_weighted () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ~weight:1. ())
       ~id:0 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ());
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ~weight:3. ())
       ~id:1 ~src:sb.Builders.senders.(1) ~dst:sb.Builders.receiver ());
  Network.run net ~until:3e-3;
  check_rate "weight 1" ~frac:0.05 2.5e9 (rate net 0);
  check_rate "weight 3" ~frac:0.05 7.5e9 (rate net 1)

let test_numfabric_parking_lot_optimum () =
  (* Proportional fairness on a 2-link parking lot: the NUM optimum is
     (C/3, 2C/3, 2C/3) — NOT max-min — so this checks that xWI's prices
     actually steer Swift away from plain fair queueing. *)
  let pl = Builders.parking_lot ~n_links:2 () in
  let h = pl.Builders.pl_hosts in
  let net = Network.create ~topology:pl.Builders.pl_topo ~protocol:(proto "numfabric") () in
  let u () = Utility.proportional_fair () in
  Network.add_flow net (Network.flow ~utility:(u ()) ~id:0 ~src:h.(0) ~dst:h.(2) ());
  Network.add_flow net (Network.flow ~utility:(u ()) ~id:1 ~src:h.(0) ~dst:h.(1) ());
  Network.add_flow net (Network.flow ~utility:(u ()) ~id:2 ~src:h.(1) ~dst:h.(2) ());
  Network.run net ~until:4e-3;
  check_rate "long flow C/3" ~frac:0.05 3.333e9 (rate net 0);
  check_rate "local 1" ~frac:0.05 6.667e9 (rate net 1);
  check_rate "local 2" ~frac:0.05 6.667e9 (rate net 2)

let test_numfabric_alpha2_packet () =
  (* alpha = 2 on the parking lot: optimum (y/sqrt 2, y, y), y = C/(1+2^-.5).
     Exercises the small-price regime (p* ~ 1e-20). *)
  let pl = Builders.parking_lot ~n_links:2 () in
  let h = pl.Builders.pl_hosts in
  let net = Network.create ~topology:pl.Builders.pl_topo ~protocol:(proto "numfabric") () in
  let u () = Utility.alpha_fair ~alpha:2. () in
  Network.add_flow net (Network.flow ~utility:(u ()) ~id:0 ~src:h.(0) ~dst:h.(2) ());
  Network.add_flow net (Network.flow ~utility:(u ()) ~id:1 ~src:h.(0) ~dst:h.(1) ());
  Network.add_flow net (Network.flow ~utility:(u ()) ~id:2 ~src:h.(1) ~dst:h.(2) ());
  Network.run net ~until:4e-3;
  let y = 1e10 /. (1. +. (1. /. sqrt 2.)) in
  check_rate "long flow" ~frac:0.07 (y /. sqrt 2.) (rate net 0);
  check_rate "local" ~frac:0.07 y (rate net 1)

let test_flow_completion () =
  let sb = Builders.single_bottleneck ~n_senders:1 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ())
       ~size:1.5e6 ~id:0 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ());
  Network.run net ~until:10e-3;
  match Network.fct net 0 with
  | None -> Alcotest.fail "flow did not complete"
  | Some fct ->
    (* 1.5 MB at 10 Gbps = 1.2 ms + slack for ramp-up and RTTs. *)
    Alcotest.(check bool) "fct near line-rate time" true (fct >= 1.2e-3 && fct < 1.5e-3)

let test_completion_increments_metric () =
  (* Regression: nf_sim_flows_completed_total must move when a finite flow
     finishes. (It legitimately stays 0 across the quick sweep — those
     experiments run persistent flows torn down by stop_flow_at, which
     count under nf_sim_flows_stopped_total instead.) *)
  let m =
    Nf_util.Metrics.counter Nf_util.Metrics.global "nf_sim_flows_completed_total"
  in
  let before = Nf_util.Metrics.counter_value m in
  let sb = Builders.single_bottleneck ~n_senders:1 () in
  let net =
    Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") ()
  in
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ())
       ~size:1.5e5 ~id:0 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ());
  Network.run net ~until:10e-3;
  Alcotest.(check bool) "flow completed" true (Network.fct net 0 <> None);
  Alcotest.(check bool) "completed counter incremented" true
    (Nf_util.Metrics.counter_value m > before)

let test_stop_flow_releases_bandwidth () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  let u () = Utility.proportional_fair () in
  Network.add_flow net
    (Network.flow ~utility:(u ()) ~id:0 ~src:sb.Builders.senders.(0)
       ~dst:sb.Builders.receiver ());
  Network.add_flow net
    (Network.flow ~utility:(u ()) ~id:1 ~src:sb.Builders.senders.(1)
       ~dst:sb.Builders.receiver ());
  Network.stop_flow_at net ~id:1 2e-3;
  Network.run net ~until:5e-3;
  check_rate "survivor takes the link" ~frac:0.05 1e10 (rate net 0)

let test_dctcp_shares_link () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "dctcp") () in
  Array.iteri
    (fun i s ->
      Network.add_flow net (Network.flow ~id:i ~src:s ~dst:sb.Builders.receiver ()))
    sb.Builders.senders;
  Network.run net ~until:5e-3;
  let total = rate net 0 +. rate net 1 in
  check_rate "full utilization" ~frac:0.12 1e10 total;
  (* The marking threshold keeps the queue around K, far below the buffer. *)
  Alcotest.(check bool) "bounded queue" true
    (Network.queue_bytes net ~link:sb.Builders.bottleneck < 120_000)

let test_rcp_fair_share () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net =
    Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "rcp") ()
  in
  Array.iteri
    (fun i s ->
      Network.add_flow net (Network.flow ~id:i ~src:s ~dst:sb.Builders.receiver ()))
    sb.Builders.senders;
  Network.run net ~until:5e-3;
  check_rate "rcp flow 0" ~frac:0.15 5e9 (rate net 0);
  check_rate "rcp flow 1" ~frac:0.15 5e9 (rate net 1)

let test_dgd_converges_roughly () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let config =
    {
      Nf_sim.Config.default with
      Nf_sim.Config.dgd =
        { Nf_sim.Config.default_dgd with Nf_sim.Config.dgd_price_scale = 2e-10 };
    }
  in
  let net = Network.create ~config ~topology:sb.Builders.sb_topo ~protocol:(proto "dgd") () in
  let u () = Utility.proportional_fair () in
  Array.iteri
    (fun i s ->
      Network.add_flow net
        (Network.flow ~utility:(u ()) ~id:i ~src:s ~dst:sb.Builders.receiver ()))
    sb.Builders.senders;
  Network.run net ~until:8e-3;
  check_rate "dgd flow 0" ~frac:0.2 5e9 (rate net 0);
  check_rate "dgd flow 1" ~frac:0.2 5e9 (rate net 1)

let test_pfabric_preemption () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "pfabric") () in
  Network.add_flow net
    (Network.flow ~size:3e6 ~id:0 ~src:sb.Builders.senders.(0)
       ~dst:sb.Builders.receiver ());
  Network.add_flow net
    (Network.flow ~size:30e3 ~start:0.5e-3 ~id:1 ~src:sb.Builders.senders.(1)
       ~dst:sb.Builders.receiver ());
  Network.run net ~until:20e-3;
  match (Network.fct net 1, Network.fct net 0) with
  | Some small, Some big ->
    (* The small flow preempts: near its solo time, far below fair-share
       time (which would be >= 48 us at 5 Gbps). *)
    Alcotest.(check bool) "small flow preempts" true (small < 45e-6);
    Alcotest.(check bool) "big flow still finishes" true (big < 3.5e-3)
  | _ -> Alcotest.fail "flows did not complete"

let test_conservation_and_paths () =
  let ls = Builders.leaf_spine ~n_leaves:2 ~n_spines:2 ~servers_per_leaf:2 () in
  let net = Network.create ~topology:ls.Builders.topo ~protocol:(proto "numfabric") () in
  let s = ls.Builders.servers in
  Network.add_flow net
    (Network.flow ~utility:(Utility.proportional_fair ()) ~id:0 ~src:s.(0) ~dst:s.(3) ());
  Network.run net ~until:2e-3;
  let path = Network.flow_path net 0 in
  Alcotest.(check bool) "cross-leaf path has 4 hops" true (Array.length path = 4);
  Alcotest.(check bool) "baseline rtt positive" true (Network.baseline_rtt net 0 > 0.);
  Alcotest.(check bool) "bytes delivered" true (Network.received_bytes net 0 > 1e5);
  Alcotest.(check int) "no drops" 0 (Network.total_drops net)

let test_add_flow_validation () =
  let sb = Builders.single_bottleneck ~n_senders:1 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  Alcotest.check_raises "missing utility"
    (Invalid_argument "Protocol numfabric: flow needs a utility")
    (fun () ->
      Network.add_flow net
        (Network.flow ~id:0 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ()));
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ())
       ~id:1 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ());
  Alcotest.check_raises "duplicate id"
    (Invalid_argument "Network.add_flow: duplicate flow id") (fun () ->
      Network.add_flow net
        (Network.flow
           ~utility:(Utility.proportional_fair ())
           ~id:1 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ()))

let test_numfabric_srpt_preempts () =
  (* Remaining-size weights approximate SRPT: a small flow arriving behind
     a big one finishes near its solo time. *)
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net =
    Network.create ~topology:sb.Builders.sb_topo
      ~protocol:(proto "numfabric-srpt") ()
  in
  Network.add_flow net
    (Network.flow ~size:3e6 ~id:0 ~src:sb.Builders.senders.(0)
       ~dst:sb.Builders.receiver ());
  Network.add_flow net
    (Network.flow ~size:60e3 ~start:0.5e-3 ~id:1 ~src:sb.Builders.senders.(1)
       ~dst:sb.Builders.receiver ());
  Network.run net ~until:20e-3;
  (match (Network.fct net 1, Network.fct net 0) with
  | Some small, Some big ->
    (* Solo time for 60 KB is ~48 us + ramp-up; fair sharing would take
       ~96 us+. SRPT weights should land well below fair sharing. *)
    Alcotest.(check bool) "small flow strongly prioritized" true (small < 180e-6);
    Alcotest.(check bool) "big flow completes" true (big < 4e-3)
  | _ -> Alcotest.fail "flows did not complete");
  (* Persistent flows cannot use remaining-size weights. *)
  let net2 =
    Network.create ~topology:sb.Builders.sb_topo
      ~protocol:(proto "numfabric-srpt") ()
  in
  Alcotest.check_raises "persistent flow rejected"
    (Invalid_argument "Protocol numfabric-srpt: SRPT weights need a finite flow size")
    (fun () ->
      Network.add_flow net2
        (Network.flow ~id:9 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ()))

let test_link_monitoring () =
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  let u = Utility.proportional_fair () in
  Array.iteri
    (fun i s ->
      Network.add_flow net
        (Network.flow ~utility:u ~id:i ~src:s ~dst:sb.Builders.receiver ()))
    sb.Builders.senders;
  Network.monitor_links net ~links:[ sb.Builders.bottleneck ] ~every:50e-6;
  Network.run net ~until:2e-3;
  (match Network.queue_series net ~link:sb.Builders.bottleneck with
  | Some ts -> Alcotest.(check bool) "queue samples" true (Nf_util.Timeseries.length ts > 30)
  | None -> Alcotest.fail "no queue series");
  match Network.price_series net ~link:sb.Builders.bottleneck with
  | Some ts -> (
    match Nf_util.Timeseries.last ts with
    | Some (_, p) -> Alcotest.(check bool) "price converged positive" true (p > 0.)
    | None -> Alcotest.fail "empty price series")
  | None -> Alcotest.fail "no price series"

let test_weight_quantization_still_shares () =
  (* Coarse weight classes distort the allocation but keep it feasible and
     roughly proportional: a 1:4 weight split quantized to powers of 2
     must still favour the heavy flow. *)
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let config =
    {
      Nf_sim.Config.default with
      Nf_sim.Config.swift =
        { Nf_sim.Config.default_swift with Nf_sim.Config.weight_quant_base = Some 2. };
    }
  in
  let net = Network.create ~config ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ~weight:1. ())
       ~id:0 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ());
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ~weight:4. ())
       ~id:1 ~src:sb.Builders.senders.(1) ~dst:sb.Builders.receiver ());
  Network.run net ~until:4e-3;
  let r0 = rate net 0 and r1 = rate net 1 in
  Alcotest.(check bool) "heavy flow favoured" true (r1 > 2. *. r0);
  check_rate "full utilization" ~frac:0.1 1e10 (r0 +. r1);
  Alcotest.(check int) "no drops" 0 (Network.total_drops net)

let test_numfabric_on_fat_tree () =
  (* End-to-end generality check on the other canonical DC topology: two
     flows to the same destination share its edge downlink equally. *)
  let ft = Builders.fat_tree ~k:4 () in
  let s = ft.Builders.ft_servers in
  let net = Network.create ~topology:ft.Builders.ft_topo ~protocol:(proto "numfabric") () in
  let u = Utility.proportional_fair () in
  (* s.(0) is in pod 0; s.(8) in pod 2; both send to s.(15) in pod 3. *)
  Network.add_flow net (Network.flow ~utility:u ~id:0 ~src:s.(0) ~dst:s.(15) ());
  Network.add_flow net (Network.flow ~utility:u ~id:1 ~src:s.(8) ~dst:s.(15) ());
  Network.run net ~until:4e-3;
  check_rate "flow 0 half" ~frac:0.06 5e9 (rate net 0);
  check_rate "flow 1 half" ~frac:0.06 5e9 (rate net 1);
  Alcotest.(check int) "no drops" 0 (Network.total_drops net)

let test_rate_series_recording () =
  let sb = Builders.single_bottleneck ~n_senders:1 () in
  let config = { Nf_sim.Config.default with Nf_sim.Config.record_rates = true } in
  let net = Network.create ~config ~topology:sb.Builders.sb_topo ~protocol:(proto "numfabric") () in
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ())
       ~id:0 ~src:sb.Builders.senders.(0) ~dst:sb.Builders.receiver ());
  Network.run net ~until:1e-3;
  match Network.rate_series net 0 with
  | Some ts ->
    Alcotest.(check bool) "series recorded" true (Nf_util.Timeseries.length ts > 100)
  | None -> Alcotest.fail "no series despite record_rates"

(* ------------------------------------------------------------------ *)
(* Protocol registry *)

let test_registry_lookup () =
  let names = Nf_sim.Protocols.names () in
  List.iter
    (fun n -> Alcotest.(check bool) ("registered: " ^ n) true (List.mem n names))
    [ "numfabric"; "numfabric-srpt"; "dgd"; "rcp"; "dctcp"; "pfabric" ];
  (match Nf_sim.Protocols.find "no-such-proto" with
  | None -> ()
  | Some _ -> Alcotest.fail "phantom protocol");
  Alcotest.check_raises "duplicate registration rejected"
    (Invalid_argument "Protocol.register: duplicate protocol \"dctcp\"")
    (fun () -> Nf_sim.Protocol.register (proto "dctcp"))

let test_every_protocol_completes () =
  (* Every registered transport must carry two finite flows across a
     shared 10 Gbps bottleneck to completion, delivering all their bytes
     (byte conservation at the flow and at the link). *)
  List.iter
    (fun p ->
      let name = Nf_sim.Protocol.name p in
      let sb = Builders.single_bottleneck ~n_senders:2 () in
      let net = Network.create ~topology:sb.Builders.sb_topo ~protocol:p () in
      let size = 300_000. in
      Array.iteri
        (fun i src ->
          let utility =
            if Nf_sim.Protocol.needs_utility p then
              Some (Utility.proportional_fair ())
            else None
          in
          Network.add_flow net
            (Network.flow ?utility ~size ~id:i ~src ~dst:sb.Builders.receiver ()))
        sb.Builders.senders;
      Network.run net ~until:0.05;
      Array.iteri
        (fun i _ ->
          (match Network.fct net i with
          | Some fct ->
            Alcotest.(check bool) (name ^ ": positive fct") true (fct > 0.)
          | None -> Alcotest.failf "%s: flow %d did not finish" name i);
          Alcotest.(check bool)
            (name ^ ": flow bytes conserved")
            true
            (Network.received_bytes net i >= size))
        sb.Builders.senders;
      Alcotest.(check bool)
        (name ^ ": link bytes conserved")
        true
        (Network.link_delivered_bytes net ~link:sb.Builders.bottleneck
        >= 2. *. size))
    Nf_sim.Protocols.builtins

let test_record_json_has_channels () =
  (* A monitored run's record must serialize every instrumentation
     channel: queue/price/drops (link monitor), rate (receiver sink) and
     fct (completion). *)
  let sb = Builders.single_bottleneck ~n_senders:1 () in
  let config = { Nf_sim.Config.default with Nf_sim.Config.record_rates = true } in
  let net =
    Network.create ~config ~topology:sb.Builders.sb_topo
      ~protocol:(proto "numfabric") ()
  in
  Network.monitor_links net ~links:[ sb.Builders.bottleneck ] ~every:50e-6;
  Network.add_flow net
    (Network.flow
       ~utility:(Utility.proportional_fair ())
       ~size:200_000. ~id:0 ~src:sb.Builders.senders.(0)
       ~dst:sb.Builders.receiver ());
  Network.run net ~until:0.01;
  let json = Nf_sim.Record.to_json (Network.record net) in
  let contains needle =
    let nl = String.length needle and jl = String.length json in
    let rec go i = i + nl <= jl && (String.sub json i nl = needle || go (i + 1)) in
    go 0
  in
  List.iter
    (fun key ->
      Alcotest.(check bool) ("json has " ^ key) true (contains ("\"" ^ key ^ "\"")))
    [ "queue"; "price"; "rate"; "drops"; "fct"; "channels" ]

let test_trace_flow_lifecycle () =
  (* A deterministic two-flow run against a kinds-filtered sink: the
     trace must open with both FlowStart events, contain the tail drops a
     3-packet buffer forces, close with both FlowDone events, and be
     time-ordered throughout. *)
  let module Trace = Nf_util.Trace in
  let tr =
    Trace.make ~capacity:4096
      ~kinds:[ Trace.FlowStart; Trace.Drop; Trace.FlowDone ] ()
  in
  let sb = Builders.single_bottleneck ~n_senders:2 () in
  let config = { Nf_sim.Config.default with Nf_sim.Config.buffer_bytes = 4_500 } in
  let net =
    Network.create ~config ~trace:tr ~topology:sb.Builders.sb_topo
      ~protocol:(proto "numfabric") ()
  in
  Array.iteri
    (fun i src ->
      Network.add_flow net
        (Network.flow
           ~utility:(Utility.proportional_fair ())
           ~size:200_000. ~id:i ~src ~dst:sb.Builders.receiver ()))
    sb.Builders.senders;
  Network.run net ~until:0.25;
  let evs = Trace.events tr in
  let kinds = List.map (fun e -> e.Trace.kind) evs in
  (match kinds with
  | Trace.FlowStart :: Trace.FlowStart :: _ -> ()
  | _ -> Alcotest.fail "trace must open with both FlowStart events");
  Alcotest.(check bool) "buffer overflow traced" true
    (List.mem Trace.Drop kinds);
  Alcotest.(check int) "drops match the link counter"
    (Network.total_drops net)
    (List.length (List.filter (fun k -> k = Trace.Drop) kinds));
  (match List.rev kinds with
  | Trace.FlowDone :: _ -> ()
  | _ -> Alcotest.fail "trace must close with a FlowDone event");
  List.iter
    (fun flow ->
      List.iter
        (fun kind ->
          Alcotest.(check int)
            (Printf.sprintf "one %s for flow %d" (Trace.kind_name kind) flow)
            1
            (List.length
               (List.filter
                  (fun e -> e.Trace.kind = kind && e.Trace.subject = flow)
                  evs)))
        [ Trace.FlowStart; Trace.FlowDone ])
    [ 0; 1 ];
  let rec ordered = function
    | a :: (b :: _ as rest) ->
      a.Trace.time <= b.Trace.time && ordered rest
    | _ -> true
  in
  Alcotest.(check bool) "events are time-ordered" true (ordered evs);
  (* FlowDone carries the fct as its value. *)
  List.iter
    (fun e ->
      if e.Trace.kind = Trace.FlowDone then
        match Network.fct net e.Trace.subject with
        | Some fct ->
          Alcotest.(check (float 1e-12)) "flow_done value is the fct" fct
            e.Trace.value
        | None -> Alcotest.fail "FlowDone traced for an unfinished flow")
    evs

let test_record_csv_header () =
  let r = Nf_sim.Record.create () in
  Nf_sim.Record.add r Nf_sim.Record.Queue ~subject:3 ~time:1e-3 1500.;
  Nf_sim.Record.complete r ~flow:0 ~at:2e-3 ~fct:2e-3;
  let csv = Nf_sim.Record.to_csv r in
  (match String.index_opt csv '\n' with
  | Some i ->
    Alcotest.(check string) "header row" "channel,subject,time,value"
      (String.sub csv 0 i)
  | None -> Alcotest.fail "csv has no rows");
  Alcotest.(check int) "header + one row per sample" 3
    (List.length
       (List.filter (fun l -> l <> "") (String.split_on_char '\n' csv)))

let test_record_empty_json () =
  (* The .mli contract: every channel appears in the JSON, empty ones as
     []. *)
  let json = Nf_sim.Record.to_json (Nf_sim.Record.create ()) in
  Alcotest.(check string) "empty record shape"
    "{\"channels\": {\"queue\": [], \"price\": [], \"rate\": [], \"drops\": \
     [], \"fct\": [], \"metric\": []}}"
    json

let () =
  Alcotest.run "nf_sim"
    [
      ( "queue_disc",
        [
          quick "fifo order and tail drop" test_fifo_order_and_drop;
          quick "ecn marking threshold" test_ecn_marking;
          quick "stfq weighted service" test_stfq_weighted_service;
          quick "stfq control packets jump" test_stfq_control_packets_jump;
          quick "stfq per-flow order" test_stfq_per_flow_order;
          quick "pfabric priority and eviction" test_pfabric_priority;
          quick "pfabric same-flow order" test_pfabric_same_flow_in_order;
          quick "stfq ordering under weight change" test_stfq_weight_change_ordering;
          quick "fifo drop accounting" test_fifo_drop_accounting;
          quick "drops counter monotone" test_drops_counter_monotone;
          quick "dequeue_exn matches dequeue" test_dequeue_exn_matches_dequeue;
          quick "stfq flow-table growth" test_stfq_flow_table_growth;
        ] );
      ( "price_engine",
        [
          quick "xwi stamps and decays" test_xwi_engine_stamps;
          quick "dgd overload raises price" test_dgd_engine_overload;
          quick "rcp fair rate dynamics" test_rcp_engine;
        ] );
      ( "network",
        [
          quick "numfabric equal share" test_numfabric_single_bottleneck;
          quick "numfabric weighted share" test_numfabric_weighted;
          quick "numfabric parking-lot optimum" test_numfabric_parking_lot_optimum;
          quick "numfabric alpha=2" test_numfabric_alpha2_packet;
          quick "finite flow completes" test_flow_completion;
          quick "completion increments metric" test_completion_increments_metric;
          quick "stop releases bandwidth" test_stop_flow_releases_bandwidth;
          quick "dctcp shares the link" test_dctcp_shares_link;
          quick "rcp fair share" test_rcp_fair_share;
          quick "dgd converges roughly" test_dgd_converges_roughly;
          quick "pfabric preemption" test_pfabric_preemption;
          quick "conservation and paths" test_conservation_and_paths;
          quick "add_flow validation" test_add_flow_validation;
          quick "numfabric on a fat tree" test_numfabric_on_fat_tree;
          quick "rate series recording" test_rate_series_recording;
          quick "srpt weights preempt" test_numfabric_srpt_preempts;
          quick "link monitoring" test_link_monitoring;
          quick "weight quantization" test_weight_quantization_still_shares;
        ] );
      ( "registry",
        [
          quick "lookup and duplicate guard" test_registry_lookup;
          quick "every protocol completes a 2-flow run" test_every_protocol_completes;
          quick "record json has all channels" test_record_json_has_channels;
          quick "record csv header" test_record_csv_header;
          quick "record empty json shape" test_record_empty_json;
          quick "trace flow lifecycle" test_trace_flow_lifecycle;
        ] );
    ]
