(* Tests for nf_serve: the JSON codec, the wire protocol, the socket-free
   allocation engine, the churn scenario, and a loopback socket session
   against a live server (driven from a second domain). *)

module Sjson = Nf_serve.Sjson
module Protocol = Nf_serve.Protocol
module Engine = Nf_serve.Engine
module Server = Nf_serve.Server
module Client = Nf_serve.Client
module Scenario = Nf_serve.Scenario
module Problem = Nf_num.Problem
module Utility = Nf_num.Utility
module Rng = Nf_util.Rng

let quick name f = Alcotest.test_case name `Quick f

let qcheck = QCheck_alcotest.to_alcotest

let pf = Utility.proportional_fair

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

(* ------------------------------------------------------------------ *)
(* Sjson *)

let test_sjson_parse_basics () =
  let p s = Sjson.parse s in
  Alcotest.(check bool) "null" true (p "null" = Ok Sjson.Null);
  Alcotest.(check bool) "true" true (p "true" = Ok (Sjson.Bool true));
  Alcotest.(check bool) "int" true (p "42" = Ok (Sjson.Num 42.));
  Alcotest.(check bool) "negative exponent" true
    (p "-2.5e3" = Ok (Sjson.Num (-2500.)));
  Alcotest.(check bool) "string escapes" true
    (p {|"a\"b\\c\n"|} = Ok (Sjson.Str "a\"b\\c\n"));
  Alcotest.(check bool) "unicode escape to UTF-8" true
    (p {|"é"|} = Ok (Sjson.Str "\xc3\xa9"));
  Alcotest.(check bool) "nested" true
    (p {|{"a":[1,2],"b":{"c":null}}|}
    = Ok
        (Sjson.Obj
           [
             ("a", Sjson.List [ Sjson.Num 1.; Sjson.Num 2. ]);
             ("b", Sjson.Obj [ ("c", Sjson.Null) ]);
           ]));
  Alcotest.(check bool) "whitespace tolerated" true
    (p " { \"a\" : 1 } " = Ok (Sjson.Obj [ ("a", Sjson.Num 1.) ]))

let test_sjson_parse_errors () =
  let bad s =
    match Sjson.parse s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "empty" true (bad "");
  Alcotest.(check bool) "trailing garbage" true (bad "1 x");
  Alcotest.(check bool) "two documents" true (bad "{} {}");
  Alcotest.(check bool) "unterminated string" true (bad {|"abc|});
  Alcotest.(check bool) "bare word" true (bad "flow");
  Alcotest.(check bool) "unclosed object" true (bad {|{"a":1|});
  Alcotest.(check bool) "missing colon" true (bad {|{"a" 1}|})

let test_sjson_print_roundtrip () =
  let docs =
    [
      Sjson.Obj
        [
          ("ok", Sjson.Bool true);
          ("gid", Sjson.Num 17.);
          ("rate", Sjson.Num 3.0517578125e9);
          ("name", Sjson.Str "serve \"smoke\"\n");
          ("xs", Sjson.List [ Sjson.Null; Sjson.Num (-0.5) ]);
        ];
      Sjson.List [];
      Sjson.Obj [];
    ]
  in
  List.iter
    (fun d ->
      match Sjson.parse (Sjson.to_string d) with
      | Ok d' -> Alcotest.(check bool) "print/parse round-trip" true (d = d')
      | Error e -> Alcotest.failf "re-parse failed: %s" e)
    docs;
  (* NaN has no JSON representation; the printer degrades it to null. *)
  Alcotest.(check string) "nan prints null" "null"
    (Sjson.to_string (Sjson.Num Float.nan))

let prop_sjson_float_roundtrip =
  QCheck.Test.make ~name:"floats survive print -> parse bit-exactly" ~count:300
    QCheck.(float_range (-1e15) 1e15)
    (fun f ->
      match Sjson.parse (Sjson.to_string (Sjson.Num f)) with
      | Ok (Sjson.Num f') ->
        Int64.equal (Int64.bits_of_float f) (Int64.bits_of_float f')
      | Ok _ | Error _ -> false)

(* Structural equality with bit-exact numbers: [=] would call NaN
   unequal to itself and conflate 0. with -0.; the wire contract is
   "the bits you printed are the bits you get back". *)
let rec sjson_equal a b =
  match (a, b) with
  | Sjson.Null, Sjson.Null -> true
  | Sjson.Bool x, Sjson.Bool y -> Bool.equal x y
  | Sjson.Num x, Sjson.Num y ->
    Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y)
  | Sjson.Str x, Sjson.Str y -> String.equal x y
  | Sjson.List xs, Sjson.List ys ->
    List.length xs = List.length ys && List.for_all2 sjson_equal xs ys
  | Sjson.Obj xs, Sjson.Obj ys ->
    List.length xs = List.length ys
    && List.for_all2
         (fun (k, v) (k', v') -> String.equal k k' && sjson_equal v v')
         xs ys
  | _ -> false

(* Finite floats only: the printer deliberately degrades nan/inf to
   null (JSON has no spelling for them), which the dedicated case in
   test_sjson_print_roundtrip covers. *)
let gen_sjson_num =
  QCheck.Gen.(
    oneof
      [
        map float_of_int int;
        map
          (fun (a, b) -> float_of_int a /. (float_of_int (abs b) +. 1.))
          (pair int int);
        oneofl
          [ 0.; -0.; 1e-308; 1.7976931348623157e308; 3.0517578125e9; -2.5e3 ];
      ])

(* Strings over the full byte range: bytes < 0x20 exercise the \u
   escapes, bytes >= 0x80 the raw UTF-8 passthrough. *)
let gen_sjson_string =
  QCheck.Gen.(
    string_size ~gen:(map Char.chr (int_range 0 255)) (int_range 0 12))

let gen_sjson_doc =
  QCheck.Gen.(
    sized_size (int_range 0 4) @@ fix
    @@ fun self n ->
    let leaf =
      oneof
        [
          return Sjson.Null;
          map (fun b -> Sjson.Bool b) bool;
          map (fun f -> Sjson.Num f) gen_sjson_num;
          map (fun s -> Sjson.Str s) gen_sjson_string;
        ]
    in
    if n = 0 then leaf
    else
      oneof
        [
          leaf;
          map
            (fun xs -> Sjson.List xs)
            (list_size (int_range 0 4) (self (n - 1)));
          map
            (fun kvs -> Sjson.Obj kvs)
            (list_size (int_range 0 4) (pair gen_sjson_string (self (n - 1))));
        ])

let arb_sjson_doc = QCheck.make ~print:Sjson.to_string gen_sjson_doc

let prop_sjson_doc_roundtrip =
  QCheck.Test.make ~name:"random documents survive print -> parse" ~count:500
    arb_sjson_doc (fun d ->
      match Sjson.parse (Sjson.to_string d) with
      | Ok d' -> sjson_equal d d'
      | Error e -> QCheck.Test.fail_reportf "re-parse failed: %s" e)

(* Mutate a printed document (truncate / flip a byte / insert a byte)
   and demand the parser either accepts it or returns Error — never
   raises (an exception fails the property). *)
let prop_sjson_parser_fails_cleanly =
  QCheck.Test.make ~name:"mutated documents fail cleanly" ~count:500
    QCheck.(
      make
        ~print:(fun (d, pos, byte, mode) ->
          Printf.sprintf "%s pos=%d byte=%d mode=%d" (Sjson.to_string d) pos
            byte mode)
        Gen.(quad gen_sjson_doc (int_range 0 1000) (int_range 0 255)
               (int_range 0 2)))
    (fun (d, pos, byte, mode) ->
      let s = Sjson.to_string d in
      let n = String.length s in
      let s =
        if n = 0 then s
        else
          let pos = pos mod (n + 1) in
          match mode with
          | 0 -> String.sub s 0 (min pos n)  (* truncate *)
          | 1 when pos < n ->
            String.mapi (fun i c -> if i = pos then Char.chr byte else c) s
          | _ ->
            String.sub s 0 pos ^ String.make 1 (Char.chr byte)
            ^ String.sub s pos (n - pos)
      in
      match Sjson.parse s with
      | Ok _ -> true
      | Error e -> String.length e > 0)

let test_sjson_malformed_corpus () =
  let corpus =
    [
      "{"; "["; "]"; "}"; "{]"; "[}"; "nul"; "tru"; "falsy"; "+1"; "--1";
      "1e"; "1e+"; "1.2.3"; "[1 2]"; "[1,]"; "[,1]"; "{\"a\":}"; "{\"a\":1,}";
      "{\"a\" \"b\"}"; "{a:1}"; "\"\\q\""; "\"\\u12"; "\"\\u123g\"";
      "\"\x01\""; "\x00"; "\xff"; "{\"a\":1}garbage"; "[[[["; "\"";
    ]
  in
  List.iter
    (fun s ->
      match Sjson.parse s with
      | Ok _ -> Alcotest.failf "parser accepted malformed input %S" s
      | Error e ->
        Alcotest.(check bool)
          (Printf.sprintf "error for %S carries a message" s)
          true
          (String.length e > 0))
    corpus

let test_sjson_accessors () =
  let doc =
    Sjson.Obj
      [
        ("i", Sjson.Num 3.);
        ("f", Sjson.Num 0.5);
        ("s", Sjson.Str "x");
        ("l", Sjson.List [ Sjson.Num 1. ]);
      ]
  in
  Alcotest.(check (option int)) "obj_int" (Some 3) (Sjson.obj_int "i" doc);
  Alcotest.(check (option int)) "obj_int rejects fraction" None
    (Sjson.obj_int "f" doc);
  Alcotest.(check bool) "obj_float" true (Sjson.obj_float "f" doc = Some 0.5);
  Alcotest.(check (option string)) "obj_str" (Some "x") (Sjson.obj_str "s" doc);
  Alcotest.(check bool) "obj_list" true
    (Sjson.obj_list "l" doc = Some [ Sjson.Num 1. ]);
  Alcotest.(check (option int)) "missing member" None (Sjson.obj_int "zz" doc);
  Alcotest.(check bool) "member on non-object" true
    (Sjson.member "a" (Sjson.Num 1.) = None)

(* ------------------------------------------------------------------ *)
(* Protocol *)

let all_commands =
  [
    Protocol.Add
      { utility = Protocol.Pf { weight = 1.5 }; paths = [ [| 0; 2 |] ] };
    Protocol.Add
      {
        utility = Protocol.Alpha { weight = 2.; alpha = 0.5 };
        paths = [ [| 1 |]; [| 3; 4 |] ];
      };
    Protocol.Add
      { utility = Protocol.Fct { size = 1e6; eps = 0.125 }; paths = [ [| 0 |] ] };
    Protocol.Remove { gid = 12 };
    Protocol.Set_cap { link = 3; cap = 1e10 };
    Protocol.Solve;
    Protocol.Query { gid = 7 };
    Protocol.Stats;
    Protocol.Subscribe;
    Protocol.Ping;
    Protocol.Shutdown;
  ]

let test_protocol_roundtrip () =
  List.iter
    (fun c ->
      let line = Protocol.encode_command c in
      Alcotest.(check bool) "one line" false (String.contains line '\n');
      match Protocol.decode_command line with
      | Ok c' -> Alcotest.(check bool) "round-trips" true (c = c')
      | Error e -> Alcotest.failf "decode of %s failed: %s" line e)
    all_commands

let test_protocol_decode_errors () =
  let bad s =
    match Protocol.decode_command s with Ok _ -> false | Error _ -> true
  in
  Alcotest.(check bool) "not json" true (bad "hello");
  Alcotest.(check bool) "unknown cmd" true (bad {|{"cmd":"frobnicate"}|});
  Alcotest.(check bool) "missing gid" true (bad {|{"cmd":"remove"}|});
  Alcotest.(check bool) "add without paths" true
    (bad {|{"cmd":"add","utility":{"kind":"pf","weight":1}}|});
  Alcotest.(check bool) "non-integer link id" true
    (bad {|{"cmd":"set_cap","link":1.5,"cap":1e9}|})

let test_protocol_replies () =
  (match Protocol.decode_reply (Protocol.ok [ ("gid", Sjson.Num 4.) ]) with
  | Ok fields ->
    Alcotest.(check (option int)) "field preserved" (Some 4)
      (Sjson.obj_int "gid" (Sjson.Obj fields))
  | Error e -> Alcotest.failf "ok reply decoded as error: %s" e);
  (match Protocol.decode_reply (Protocol.error "no such gid") with
  | Ok _ -> Alcotest.fail "error reply decoded as ok"
  | Error reason ->
    Alcotest.(check string) "reason carried" "no such gid" reason);
  match Protocol.decode_reply "garbage" with
  | Ok _ -> Alcotest.fail "garbage accepted"
  | Error _ -> ()

(* ------------------------------------------------------------------ *)
(* Engine *)

let test_engine_epochs () =
  let e = Engine.create ~caps:[| 10. |] () in
  (* An empty fabric solves trivially. *)
  let ep0 = Engine.solve_epoch e in
  Alcotest.(check int) "empty epoch iterations" 0 ep0.Engine.iterations;
  Alcotest.(check bool) "empty epoch converged" true ep0.Engine.converged;
  Alcotest.(check bool) "empty epoch not warm" false ep0.Engine.warm;
  (* First real epoch is cold, the next one warm. *)
  let a = Engine.add_flow e ~utility:(pf ()) ~paths:[ [| 0 |] ] in
  Alcotest.(check int) "event pending" 1 (Engine.pending_events e);
  let ep1 = Engine.solve_epoch e in
  Alcotest.(check bool) "first populated epoch is cold" false ep1.Engine.warm;
  Alcotest.(check bool) "converged" true ep1.Engine.converged;
  Alcotest.(check int) "pending drained" 0 (Engine.pending_events e);
  let b = Engine.add_flow e ~utility:(pf ()) ~paths:[ [| 0 |] ] in
  let ep2 = Engine.solve_epoch e in
  Alcotest.(check bool) "second epoch is warm" true ep2.Engine.warm;
  Alcotest.(check int) "two flows" 2 ep2.Engine.n_flows;
  (* Equal shares on the single link, through the gid-keyed accessor. *)
  (match (Engine.group_rate e a, Engine.group_rate e b) with
  | Some ra, Some rb ->
    Alcotest.(check bool) "equal shares" true
      (Nf_util.Fcmp.rel_eq ~rel:1e-6 ra 5.
      && Nf_util.Fcmp.rel_eq ~rel:1e-6 rb 5.)
  | _ -> Alcotest.fail "live gids must have rates");
  (* Departure: reads resolve pending events implicitly. *)
  Engine.remove_flow e a;
  Alcotest.(check bool) "departed gid has no rate" true
    (Engine.group_rate e a = None);
  (match Engine.group_rate e b with
  | Some rb ->
    Alcotest.(check bool) "survivor takes the link" true
      (Nf_util.Fcmp.rel_eq ~rel:1e-6 rb 10.)
  | None -> Alcotest.fail "survivor lost its rate");
  Alcotest.(check int) "rates sized to live flows" 1
    (Array.length (Engine.rates e));
  let s = Engine.stats e in
  Alcotest.(check int) "events counted" 3 s.Engine.total_events;
  Alcotest.(check bool) "warm epochs counted" true (s.Engine.warm_epochs >= 2);
  (* the trivial empty epoch and the first populated one are both cold *)
  Alcotest.(check int) "cold epochs counted" 2 s.Engine.cold_epochs;
  Alcotest.(check bool) "p99 covers p50" true
    (s.Engine.p99_latency >= s.Engine.p50_latency)

let test_engine_set_cap () =
  let e = Engine.create ~caps:[| 10. |] () in
  let a = Engine.add_flow e ~utility:(pf ()) ~paths:[ [| 0 |] ] in
  ignore (Engine.solve_epoch e : Engine.epoch);
  Engine.set_cap e 0 20.;
  (match Engine.group_rate e a with
  | Some r ->
    Alcotest.(check bool) "allocation tracks the new capacity" true
      (Nf_util.Fcmp.rel_eq ~rel:1e-6 r 20.)
  | None -> Alcotest.fail "flow lost its rate");
  let last = Engine.last_epoch e in
  Alcotest.(check bool) "capacity change solved warm" true
    (match last with Some ep -> ep.Engine.warm | None -> false)

let test_engine_emptied_restarts_cold () =
  let e = Engine.create ~caps:[| 10. |] () in
  let a = Engine.add_flow e ~utility:(pf ()) ~paths:[ [| 0 |] ] in
  ignore (Engine.solve_epoch e : Engine.epoch);
  Engine.remove_flow e a;
  let ep = Engine.solve_epoch e in
  Alcotest.(check int) "empty again" 0 ep.Engine.n_flows;
  ignore (Engine.add_flow e ~utility:(pf ()) ~paths:[ [| 0 |] ]);
  let ep = Engine.solve_epoch e in
  Alcotest.(check bool) "no stale prices across an empty interval" false
    ep.Engine.warm

(* ------------------------------------------------------------------ *)
(* Scenario *)

let test_scenario_deterministic () =
  let a = Scenario.leaf_spine ~seed:5 () in
  let b = Scenario.leaf_spine ~seed:5 () in
  Alcotest.(check int) "pool size" 1000 (Array.length a.Scenario.path_pool);
  Alcotest.(check bool) "same seed, same caps" true
    (a.Scenario.caps = b.Scenario.caps);
  Alcotest.(check bool) "same seed, same pool" true
    (a.Scenario.path_pool = b.Scenario.path_pool);
  Array.iter
    (fun path ->
      Alcotest.(check bool) "paths non-empty and in range" true
        (Array.length path > 0
        && Array.for_all
             (fun l -> l >= 0 && l < Array.length a.Scenario.caps)
             path))
    a.Scenario.path_pool

let test_scenario_event_bounds () =
  let sc = Scenario.leaf_spine ~seed:5 () in
  let rng = Rng.create ~seed:6 in
  (match Scenario.next_event rng sc ~live:0 ~target:10 with
  | Scenario.Arrive i ->
    Alcotest.(check bool) "arrival index in pool" true
      (i >= 0 && i < Array.length sc.Scenario.path_pool)
  | Scenario.Depart _ -> Alcotest.fail "empty fabric must arrive");
  let live = 50 in
  for _ = 1 to 200 do
    match Scenario.next_event rng sc ~live ~target:50 with
    | Scenario.Arrive i ->
      Alcotest.(check bool) "arrive in pool" true
        (i >= 0 && i < Array.length sc.Scenario.path_pool)
    | Scenario.Depart j ->
      Alcotest.(check bool) "depart in live range" true (j >= 0 && j < live)
  done

(* ------------------------------------------------------------------ *)
(* Loopback socket session against a live server *)

let with_server f =
  let engine = Engine.create ~caps:[| 10.; 10. |] () in
  let server = Server.create ~engine (Server.Tcp 0) in
  let port =
    match Server.port server with
    | Some p -> p
    | None -> Alcotest.fail "TCP server must report its port"
  in
  let d = Domain.spawn (fun () -> Server.run server) in
  Fun.protect
    ~finally:(fun () ->
      Server.stop server;
      Domain.join d)
    (fun () -> f port)

let ok_or_fail what = function
  | Ok v -> v
  | Error e -> Alcotest.failf "%s: %s" what e

let test_socket_session () =
  with_server (fun port ->
      let c = Client.connect_tcp port in
      Fun.protect
        ~finally:(fun () -> Client.close c)
        (fun () ->
          ignore (ok_or_fail "ping" (Client.request c Protocol.Ping));
          let fields =
            ok_or_fail "add"
              (Client.request c
                 (Protocol.Add
                    {
                      utility = Protocol.Pf { weight = 1. };
                      paths = [ [| 0 |] ];
                    }))
          in
          let gid =
            match Sjson.obj_int "gid" (Sjson.Obj fields) with
            | Some g -> g
            | None -> Alcotest.fail "add reply must carry a gid"
          in
          let fields =
            ok_or_fail "query" (Client.request c (Protocol.Query { gid }))
          in
          (match Sjson.obj_float "rate" (Sjson.Obj fields) with
          | Some r ->
            Alcotest.(check bool) "sole flow takes the link" true
              (Nf_util.Fcmp.rel_eq ~rel:1e-6 r 10.)
          | None -> Alcotest.fail "query reply must carry a rate");
          (* Errors come back as protocol errors, not closed connections. *)
          (match Client.request c (Protocol.Remove { gid = 9999 }) with
          | Ok _ -> Alcotest.fail "removing an unknown gid must fail"
          | Error _ -> ());
          let fields =
            ok_or_fail "stats" (Client.request c Protocol.Stats)
          in
          (match Sjson.obj_int "epochs" (Sjson.Obj fields) with
          | Some n -> Alcotest.(check bool) "epochs counted" true (n >= 1)
          | None -> Alcotest.fail "stats reply must carry epochs")))

let test_socket_subscribe_push () =
  with_server (fun port ->
      let sub = Client.connect_tcp port in
      let drv = Client.connect_tcp port in
      Fun.protect
        ~finally:(fun () ->
          Client.close sub;
          Client.close drv)
        (fun () ->
          ignore (ok_or_fail "subscribe" (Client.request sub Protocol.Subscribe));
          ignore
            (ok_or_fail "add"
               (Client.request drv
                  (Protocol.Add
                     {
                       utility = Protocol.Pf { weight = 1. };
                       paths = [ [| 1 |] ];
                     })));
          match Client.read_line sub with
          | Some line ->
            Alcotest.(check bool) "epoch push delivered" true
              (contains ~needle:"\"push\"" line
              && contains ~needle:"epoch" line)
          | None -> Alcotest.fail "subscriber saw EOF instead of a push"))

let test_socket_scrape_and_shutdown () =
  let engine = Engine.create ~caps:[| 10. |] () in
  let server = Server.create ~engine (Server.Tcp 0) in
  let port = Option.get (Server.port server) in
  let d = Domain.spawn (fun () -> Server.run server) in
  let c = Client.connect_tcp port in
  ignore
    (ok_or_fail "add"
       (Client.request c
          (Protocol.Add
             { utility = Protocol.Pf { weight = 1. }; paths = [ [| 0 |] ] })));
  let body = ok_or_fail "scrape" (Client.scrape_metrics port) in
  Alcotest.(check bool) "prometheus exposition has serve counters" true
    (contains ~needle:"nf_serve_epochs_total" body);
  (* A clean shutdown command stops the run loop; join must return. *)
  ignore (ok_or_fail "shutdown" (Client.request c Protocol.Shutdown));
  Domain.join d;
  Client.close c

let test_unix_socket_roundtrip () =
  let path = Filename.temp_file "nf_serve_test" ".sock" in
  Sys.remove path;
  let engine = Engine.create ~caps:[| 10. |] () in
  let server = Server.create ~engine (Server.Unix_sock path) in
  Alcotest.(check bool) "unix server has no TCP port" true
    (Server.port server = None);
  let d = Domain.spawn (fun () -> Server.run server) in
  let c = Client.connect_unix path in
  ignore (ok_or_fail "ping over unix socket" (Client.request c Protocol.Ping));
  ignore (ok_or_fail "shutdown" (Client.request c Protocol.Shutdown));
  Domain.join d;
  Client.close c;
  Alcotest.(check bool) "socket path unlinked on shutdown" false
    (Sys.file_exists path)

let test_drive_loopback () =
  (* A dedicated server sized for the scenario's fabric (a small leaf-spine,
     not with_server's two-link toy). *)
  let sc =
    Scenario.leaf_spine ~n_leaves:2 ~n_spines:2 ~servers_per_leaf:4 ~pool:50
      ~seed:3 ()
  in
  let engine = Engine.create ~caps:sc.Scenario.caps () in
  let server = Server.create ~engine (Server.Tcp 0) in
  let port = Option.get (Server.port server) in
  let d = Domain.spawn (fun () -> Server.run server) in
  let c = Client.connect_tcp port in
  let rng = Rng.create ~seed:4 in
  let report =
    match Client.drive c ~rng ~scenario:sc ~events:60 ~target:10 with
    | Ok r -> r
    | Error e -> Alcotest.failf "drive failed: %s" e
  in
  Alcotest.(check int) "all events driven" 60 report.Client.driven;
  Alcotest.(check int) "arrivals + departures = events" 60
    (report.Client.arrivals + report.Client.departures);
  let fields = ok_or_fail "stats" (Client.request c Protocol.Stats) in
  (match Sjson.obj_int "events" (Sjson.Obj fields) with
  | Some n -> Alcotest.(check bool) "server saw the events" true (n >= 60)
  | None -> Alcotest.fail "stats must carry events");
  ignore (ok_or_fail "shutdown" (Client.request c Protocol.Shutdown));
  Domain.join d;
  Client.close c

let () =
  Alcotest.run "nf_serve"
    [
      ( "sjson",
        [
          quick "parse basics" test_sjson_parse_basics;
          quick "parse errors" test_sjson_parse_errors;
          quick "print round-trip" test_sjson_print_roundtrip;
          qcheck prop_sjson_float_roundtrip;
          qcheck prop_sjson_doc_roundtrip;
          qcheck prop_sjson_parser_fails_cleanly;
          quick "malformed corpus" test_sjson_malformed_corpus;
          quick "accessors" test_sjson_accessors;
        ] );
      ( "protocol",
        [
          quick "command round-trip" test_protocol_roundtrip;
          quick "decode errors" test_protocol_decode_errors;
          quick "replies" test_protocol_replies;
        ] );
      ( "engine",
        [
          quick "epoch lifecycle, warm after cold" test_engine_epochs;
          quick "capacity change" test_engine_set_cap;
          quick "emptied fabric restarts cold" test_engine_emptied_restarts_cold;
        ] );
      ( "scenario",
        [
          quick "deterministic by seed" test_scenario_deterministic;
          quick "event bounds" test_scenario_event_bounds;
        ] );
      ( "socket",
        [
          quick "request/reply session" test_socket_session;
          quick "subscriber epoch push" test_socket_subscribe_push;
          quick "metrics scrape + shutdown" test_socket_scrape_and_shutdown;
          quick "unix-domain socket" test_unix_socket_roundtrip;
          quick "churn drive over loopback" test_drive_loopback;
        ] );
    ]
