(* Tests for nf_num: utilities, weighted max-min, bandwidth functions,
   KKT checking, the xWI iteration and the Oracle solvers. *)

module Utility = Nf_num.Utility
module Problem = Nf_num.Problem
module Maxmin = Nf_num.Maxmin
module Bf = Nf_num.Bandwidth_function
module Kkt = Nf_num.Kkt
module Xwi = Nf_num.Xwi_core
module Oracle = Nf_num.Oracle
module Fcmp = Nf_util.Fcmp
module Units = Nf_util.Units
module Piecewise = Nf_util.Piecewise
module Rng = Nf_util.Rng

let quick name f = Alcotest.test_case name `Quick f

let slow name f = Alcotest.test_case name `Slow f

let qcheck = QCheck_alcotest.to_alcotest

let check_close ?(rel = 1e-9) what expected actual =
  if not (Fcmp.rel_eq ~rel expected actual) then
    Alcotest.failf "%s: expected %.10g, got %.10g" what expected actual

let check_rates ?(rel = 1e-6) what expected actual =
  Array.iteri
    (fun i e ->
      if not (Fcmp.rel_eq ~rel e actual.(i)) then
        Alcotest.failf "%s: flow %d expected %.10g, got %.10g" what i e actual.(i))
    expected

(* ------------------------------------------------------------------ *)
(* Utility functions *)

let test_alpha_fair_log () =
  let u = Utility.proportional_fair () in
  check_close "U(x) = ln x" (log 5.) (u.Utility.value 5.);
  check_close "U'(x) = 1/x" 0.2 (u.Utility.deriv 5.);
  check_close "U'^-1(p) = 1/p" 5. (u.Utility.inv_deriv 0.2)

let test_alpha_fair_weighted () =
  let u = Utility.alpha_fair ~weight:3. ~alpha:2. () in
  (* U'(x) = w^a x^-a = 9 x^-2 *)
  check_close "deriv" (9. /. 25.) (u.Utility.deriv 5.);
  check_close "inverse" 5. (u.Utility.inv_deriv (9. /. 25.))

let test_alpha_fair_validation () =
  Alcotest.check_raises "alpha 0"
    (Invalid_argument "Utility.alpha_fair: alpha must be positive") (fun () ->
      ignore (Utility.alpha_fair ~alpha:0. ()));
  Alcotest.check_raises "negative weight"
    (Invalid_argument "Utility.alpha_fair: weight must be positive") (fun () ->
      ignore (Utility.alpha_fair ~weight:(-1.) ~alpha:1. ()))

let test_fct_matches_weighted_alpha () =
  (* fct(size, eps) should equal alpha_fair(alpha = eps, w = size^(-1/eps)). *)
  let size = 1e6 and eps = 0.125 in
  let u = Utility.fct ~size ~eps in
  let v = Utility.alpha_fair ~weight:(size ** (-1. /. eps)) ~alpha:eps () in
  List.iter
    (fun x ->
      check_close "deriv agreement" (v.Utility.deriv x) (u.Utility.deriv x))
    [ 1e3; 1e6; 1e9 ];
  (* Marginal utility at equal rate is larger for smaller flows. *)
  let small = Utility.fct ~size:1e3 ~eps in
  Alcotest.(check bool) "smaller flows have steeper utility" true
    (small.Utility.deriv 1e6 > u.Utility.deriv 1e6)

let test_deadline_utility () =
  (* Earlier deadlines get steeper utilities, hence priority. *)
  let tight = Utility.deadline ~deadline:1e-3 ~eps:0.125 in
  let loose = Utility.deadline ~deadline:50e-3 ~eps:0.125 in
  Alcotest.(check bool) "tight deadline is steeper" true
    (tight.Utility.deriv 1e9 > loose.Utility.deriv 1e9);
  Alcotest.check_raises "bad deadline"
    (Invalid_argument "Utility.deadline: deadline must be positive") (fun () ->
      ignore (Utility.deadline ~deadline:0. ~eps:0.125))

let test_fct_remaining_tracks () =
  (* As a flow drains, its remaining-size utility steepens past a fresh
     larger flow's. *)
  let big = Utility.fct_remaining ~remaining:1e7 ~eps:0.125 in
  let drained = Utility.fct_remaining ~remaining:1e4 ~eps:0.125 in
  Alcotest.(check bool) "drained flow gains priority" true
    (drained.Utility.deriv 1e8 > big.Utility.deriv 1e8);
  (* Degenerate remaining values are clamped, not errors. *)
  let z = Utility.fct_remaining ~remaining:0. ~eps:0.125 in
  Alcotest.(check bool) "zero remaining clamps" true
    (Float.is_finite (z.Utility.deriv 1e6))

let test_rate_from_price_clamps () =
  let u = Utility.proportional_fair () in
  let r = Utility.rate_from_price u 0. in
  Alcotest.(check bool) "zero price clamped, finite rate" true (Float.is_finite r);
  let r2 = Utility.rate_from_price u ~max_rate:100. 0. in
  check_close "max_rate clamp" 100. r2

let prop_inv_deriv_roundtrip =
  QCheck.Test.make ~name:"U'^-1 inverts U' for alpha-fair" ~count:300
    QCheck.(triple (float_range 0.125 5.) (float_range 0.1 10.) (float_range 0.01 1e4))
    (fun (alpha, weight, x) ->
      let u = Utility.alpha_fair ~weight ~alpha () in
      Fcmp.rel_eq ~rel:1e-6 x (u.Utility.inv_deriv (u.Utility.deriv x)))

let prop_deriv_decreasing =
  QCheck.Test.make ~name:"marginal utility decreases (concavity)" ~count:300
    QCheck.(triple (float_range 0.125 5.) (float_range 0.01 100.) (float_range 1.01 10.))
    (fun (alpha, x, factor) ->
      let u = Utility.alpha_fair ~alpha () in
      u.Utility.deriv (x *. factor) < u.Utility.deriv x)

let prop_value_increasing =
  QCheck.Test.make ~name:"utility value increases in rate" ~count:300
    QCheck.(triple (float_range 0.125 5.) (float_range 0.01 100.) (float_range 1.01 10.))
    (fun (alpha, x, factor) ->
      let u = Utility.alpha_fair ~alpha () in
      u.Utility.value (x *. factor) > u.Utility.value x)

(* ------------------------------------------------------------------ *)
(* Weighted max-min *)

let single_link_paths n = Array.make n [| 0 |]

let test_maxmin_single_link_equal () =
  let r =
    Maxmin.solve ~caps:[| 10. |] ~paths:(single_link_paths 4)
      ~weights:[| 1.; 1.; 1.; 1. |]
  in
  check_rates "equal split" [| 2.5; 2.5; 2.5; 2.5 |] r.Maxmin.rates;
  Array.iter (fun b -> Alcotest.(check int) "bottleneck" 0 b) r.Maxmin.bottleneck

let test_maxmin_single_link_weighted () =
  let r =
    Maxmin.solve ~caps:[| 10. |] ~paths:(single_link_paths 2) ~weights:[| 1.; 3. |]
  in
  check_rates "weighted split" [| 2.5; 7.5 |] r.Maxmin.rates;
  check_close "fair share" 2.5 r.Maxmin.fair_share.(0);
  check_close "fair share equal across flows" r.Maxmin.fair_share.(0)
    r.Maxmin.fair_share.(1)

let test_maxmin_two_bottlenecks () =
  (* l0: cap 10 (flows A, B); l1: cap 4 (flows A, C); equal weights.
     A and C freeze at 2 on l1; B then takes 8 on l0. *)
  let paths = [| [| 0; 1 |]; [| 0 |]; [| 1 |] |] in
  let r = Maxmin.solve ~caps:[| 10.; 4. |] ~paths ~weights:[| 1.; 1.; 1. |] in
  check_rates "multi-bottleneck" [| 2.; 8.; 2. |] r.Maxmin.rates;
  Alcotest.(check int) "A bottleneck is l1" 1 r.Maxmin.bottleneck.(0);
  Alcotest.(check int) "B bottleneck is l0" 0 r.Maxmin.bottleneck.(1)

let test_maxmin_parking_lot () =
  (* 3 chain links cap 9; long flow over all, one local flow per link. *)
  let paths = [| [| 0; 1; 2 |]; [| 0 |]; [| 1 |]; [| 2 |] |] in
  let r =
    Maxmin.solve ~caps:[| 9.; 9.; 9. |] ~paths ~weights:[| 1.; 1.; 1.; 1. |]
  in
  check_rates "parking lot" [| 4.5; 4.5; 4.5; 4.5 |] r.Maxmin.rates

let test_maxmin_validation () =
  Alcotest.check_raises "zero weight"
    (Invalid_argument "Maxmin.solve: non-positive weight") (fun () ->
      ignore (Maxmin.solve ~caps:[| 1. |] ~paths:(single_link_paths 1) ~weights:[| 0. |]));
  Alcotest.check_raises "empty path" (Invalid_argument "Maxmin.solve: empty path")
    (fun () -> ignore (Maxmin.solve ~caps:[| 1. |] ~paths:[| [||] |] ~weights:[| 1. |]))

let random_single_path_instance rng =
  let n_links = 2 + Rng.int rng 4 in
  let caps = Array.init n_links (fun _ -> Rng.uniform rng ~lo:1. ~hi:10.) in
  let n_flows = 2 + Rng.int rng 5 in
  let paths =
    Array.init n_flows (fun _ ->
        let len = 1 + Rng.int rng (min 3 n_links) in
        let perm = Rng.permutation rng n_links in
        Array.sub perm 0 len)
  in
  let weights = Array.init n_flows (fun _ -> Rng.uniform rng ~lo:0.2 ~hi:5.) in
  (caps, paths, weights)

let prop_maxmin_is_maxmin =
  QCheck.Test.make ~name:"water-filling output satisfies max-min conditions"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let caps, paths, weights = random_single_path_instance rng in
      let r = Maxmin.solve ~caps ~paths ~weights in
      Maxmin.is_maxmin ~caps ~paths ~weights r.Maxmin.rates)

let prop_maxmin_feasible_and_positive =
  QCheck.Test.make ~name:"water-filling is feasible with positive rates"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed in
      let caps, paths, weights = random_single_path_instance rng in
      let r = Maxmin.solve ~caps ~paths ~weights in
      let loads = Array.make (Array.length caps) 0. in
      Array.iteri
        (fun i p -> Array.iter (fun l -> loads.(l) <- loads.(l) +. r.Maxmin.rates.(i)) p)
        paths;
      Array.for_all (fun x -> x > 0.) r.Maxmin.rates
      && Array.for_all2 (fun load cap -> load <= cap *. (1. +. 1e-9)) loads caps)

let prop_maxmin_scale_invariant =
  QCheck.Test.make ~name:"scaling all weights leaves rates unchanged" ~count:200
    QCheck.(pair small_int (float_range 0.1 100.))
    (fun (seed, k) ->
      let rng = Rng.create ~seed in
      let caps, paths, weights = random_single_path_instance rng in
      let r1 = Maxmin.solve ~caps ~paths ~weights in
      let r2 = Maxmin.solve ~caps ~paths ~weights:(Array.map (fun w -> w *. k) weights) in
      Array.for_all2 (Fcmp.rel_eq ~rel:1e-6) r1.Maxmin.rates r2.Maxmin.rates)

(* ------------------------------------------------------------------ *)
(* Bandwidth functions *)

let test_bf_fig2_shape () =
  let b1 = Bf.fig2_flow1 () and b2 = Bf.fig2_flow2 () in
  check_close "B1(2) = 10G" (Units.gbps 10.) (Bf.bandwidth b1 2.);
  check_close "B1(2.5) = 15G" (Units.gbps 15.) (Bf.bandwidth b1 2.5);
  Alcotest.(check bool) "B2(2) ~ 0" true (Bf.bandwidth b2 2. < Units.mbps 1.);
  check_close ~rel:1e-3 "B2(2.5) = 10G" (Units.gbps 10.) (Bf.bandwidth b2 2.5)

let test_bf_fig2_allocation_10g () =
  let bfs = [| Bf.fig2_flow1 (); Bf.fig2_flow2 () |] in
  let rates, f = Bf.single_link_allocation ~bfs ~capacity:(Units.gbps 10.) in
  (* Flow 1 has strict priority on the first 10 Gbps. *)
  check_close ~rel:1e-3 "flow1 gets everything" (Units.gbps 10.) rates.(0);
  Alcotest.(check bool) "flow2 gets ~nothing" true (rates.(1) < Units.mbps 10.);
  Alcotest.(check bool) "fair share ~2" true (Float.abs (f -. 2.) < 0.01)

let test_bf_fig2_allocation_25g () =
  let bfs = [| Bf.fig2_flow1 (); Bf.fig2_flow2 () |] in
  let rates, f = Bf.single_link_allocation ~bfs ~capacity:(Units.gbps 25.) in
  check_close ~rel:1e-3 "flow1 15G" (Units.gbps 15.) rates.(0);
  check_close ~rel:1e-3 "flow2 10G" (Units.gbps 10.) rates.(1);
  Alcotest.(check bool) "fair share ~2.5" true (Float.abs (f -. 2.5) < 0.01)

let test_bf_fair_share_roundtrip () =
  let b1 = Bf.fig2_flow1 () in
  List.iter
    (fun f -> check_close ~rel:1e-9 "F(B(f)) = f" f (Bf.fair_share b1 (Bf.bandwidth b1 f)))
    [ 0.5; 1.; 2.; 2.25; 3. ]

let test_bf_create_requires_origin () =
  Alcotest.check_raises "must start at origin"
    (Invalid_argument "Bandwidth_function.create: curve must start at (0, 0)")
    (fun () -> ignore (Bf.create (Piecewise.of_points [ (1., 0.); (2., 1.) ])))

let test_bf_utility_consistency () =
  let b1 = Bf.fig2_flow1 () in
  let u = Bf.utility b1 ~alpha:5. in
  (* inv_deriv inverts deriv on the rising part of the curve. *)
  List.iter
    (fun x ->
      check_close ~rel:1e-6 "U'^-1(U'(x)) = x" x (u.Utility.inv_deriv (u.Utility.deriv x)))
    [ Units.gbps 2.; Units.gbps 10.; Units.gbps 14. ]

let test_bf_waterfill_matches_single_link () =
  let bfs = [| Bf.fig2_flow1 (); Bf.fig2_flow2 () |] in
  let cap = Units.gbps 25. in
  let expected, _ = Bf.single_link_allocation ~bfs ~capacity:cap in
  let got = Bf.waterfill ~caps:[| cap |] ~paths:[| [| 0 |]; [| 0 |] |] ~bfs in
  check_rates ~rel:1e-3 "waterfill single link" expected got

let test_bf_waterfill_two_links () =
  (* Flow 1 on link 0 only (cap 10G), flow 2 on both links (link 1 cap 4G),
     both with the identity bandwidth function B(f) = f Gbps:
     flow 2 freezes at 4G on link 1; flow 1 continues to 6G... but link 0
     has 10G so flow 1 freezes at 6G only if link 0 saturates: 4 + 6 = 10. *)
  let identity =
    Bf.create (Piecewise.of_points [ (0., 0.); (100., Units.gbps 100.) ])
  in
  let got =
    Bf.waterfill
      ~caps:[| Units.gbps 10.; Units.gbps 4. |]
      ~paths:[| [| 0 |]; [| 0; 1 |] |]
      ~bfs:[| identity; identity |]
  in
  check_rates ~rel:1e-3 "two-link waterfill" [| Units.gbps 6.; Units.gbps 4. |] got

(* ------------------------------------------------------------------ *)
(* Oracle (dual) against closed forms *)

let single_link_problem ~cap utilities =
  Problem.create ~caps:[| cap |]
    ~groups:(List.map (fun u -> Problem.single_path u [| 0 |]) utilities)

let test_oracle_dual_single_link_proportional () =
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u; u; u ] in
  let sol = Oracle.solve_dual p in
  check_rates ~rel:1e-4 "equal shares" [| 2.5; 2.5; 2.5; 2.5 |] sol.Oracle.rates

let test_oracle_dual_single_link_weighted () =
  (* Weighted proportional fairness on one link: x_i = w_i / sum_w * C. *)
  let us =
    [ Utility.proportional_fair ~weight:1. ();
      Utility.proportional_fair ~weight:2. ();
      Utility.proportional_fair ~weight:5. () ]
  in
  let p = single_link_problem ~cap:16. us in
  let sol = Oracle.solve_dual p in
  check_rates ~rel:1e-4 "weighted shares" [| 2.; 4.; 10. |] sol.Oracle.rates

let parking_lot_problem ~alpha ~cap =
  (* Flow 0 over links 0 and 1; flow 1 on link 0; flow 2 on link 1. *)
  let u = Utility.alpha_fair ~alpha () in
  Problem.create ~caps:[| cap; cap |]
    ~groups:
      [
        Problem.single_path u [| 0; 1 |];
        Problem.single_path u [| 0 |];
        Problem.single_path u [| 1 |];
      ]

let test_oracle_dual_parking_lot_alpha1 () =
  (* alpha = 1: x0 = C/3, x1 = x2 = 2C/3. *)
  let p = parking_lot_problem ~alpha:1. ~cap:9. in
  let sol = Oracle.solve_dual p in
  check_rates ~rel:1e-4 "proportional parking lot" [| 3.; 6.; 6. |] sol.Oracle.rates

let test_oracle_dual_parking_lot_alpha2 () =
  (* alpha = 2: with y = x1 = x2 and x0 = y / sqrt 2, x0 + y = C. *)
  let cap = 10. in
  let p = parking_lot_problem ~alpha:2. ~cap in
  let sol = Oracle.solve_dual p in
  let y = cap /. (1. +. (1. /. sqrt 2.)) in
  check_rates ~rel:1e-4 "alpha=2 parking lot" [| y /. sqrt 2.; y; y |] sol.Oracle.rates

let test_oracle_dual_rejects_multipath () =
  let u = Utility.proportional_fair () in
  let p =
    Problem.create ~caps:[| 1.; 1. |]
      ~groups:[ { Problem.utility = u; paths = [ [| 0 |]; [| 1 |] ] } ]
  in
  Alcotest.check_raises "multipath rejected"
    (Invalid_argument "Oracle.solve_dual: multipath problems are not supported")
    (fun () -> ignore (Oracle.solve_dual p))

let test_oracle_dual_kkt_certified () =
  let p = parking_lot_problem ~alpha:0.5 ~cap:4. in
  let sol = Oracle.solve_dual p in
  Alcotest.(check bool) "kkt residual small" true (Kkt.worst sol.Oracle.kkt < 1e-8)

(* ------------------------------------------------------------------ *)
(* xWI fixed point *)

let test_xwi_single_link_proportional () =
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u ] in
  let state = Xwi.init p in
  let run = Xwi.run_to_fixpoint ~tol:1e-12 p Xwi.default_params state in
  Alcotest.(check bool) "converged" true run.Xwi.converged;
  check_rates ~rel:1e-6 "equal shares" [| 5.; 5. |] state.Xwi.rates

let test_xwi_matches_dual_on_parking_lot () =
  List.iter
    (fun alpha ->
      let p = parking_lot_problem ~alpha ~cap:8. in
      let dual = Oracle.solve_dual p in
      let sol = Oracle.solve ~tol:1e-5 p in
      check_rates ~rel:1e-3
        (Printf.sprintf "alpha=%g" alpha)
        dual.Oracle.rates sol.Oracle.rates)
    [ 0.5; 1.; 2. ]

let test_xwi_prices_drive_weights () =
  (* At the fixed point, weights equal the optimal rates (paper §4.2). *)
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u; u; u ] in
  let state = Xwi.init p in
  ignore (Xwi.run_to_fixpoint ~tol:1e-13 p Xwi.default_params state);
  Array.iteri
    (fun i w -> check_close ~rel:1e-5 (Printf.sprintf "w%d = x%d" i i) state.Xwi.rates.(i) w)
    state.Xwi.weights

let test_xwi_multipath_pooling () =
  (* Two links of capacity 4 and 6; one multipath group with a sub-flow on
     each and log utility of the total; plus one single-path competitor on
     link 0 with log utility. NUM: maximize ln(y) + ln(z) with
     y = x_a + x_b, x_a + z <= 4, x_b <= 6. Optimum: pooled flow saturates
     link 1 (x_b = 6); on link 0, ln(y)' = 1/(6 + x_a) < ln(z)' = 1/z at
     equal split, so z > x_a. Solving: p0 = 1/z = 1/(6 + x_a), with
     x_a + z = 4 -> x_a = -1? Infeasible: x_a = 0 (unused sub-flow),
     z = 4, y = 6, with p0 = 1/4 > 1/6 = U'(y): KKT holds with the unused
     sub-flow's path price exceeding the group's marginal utility. *)
  let pool =
    { Problem.utility = Utility.proportional_fair (); paths = [ [| 0 |]; [| 1 |] ] }
  in
  let solo = Problem.single_path (Utility.proportional_fair ()) [| 0 |] in
  let p = Problem.create ~caps:[| 4.; 6. |] ~groups:[ pool; solo ] in
  let sol = Oracle.solve ~tol:1e-4 p in
  check_close ~rel:1e-3 "pooled total" 6. sol.Oracle.group_rates.(0);
  check_close ~rel:1e-3 "solo" 4. sol.Oracle.group_rates.(1);
  Alcotest.(check bool) "sub-flow a idle" true (sol.Oracle.rates.(0) < 0.05)

let prop_xwi_matches_dual_random =
  QCheck.Test.make ~name:"xWI fixed point matches dual solver on random problems"
    ~count:25 QCheck.(pair small_int (0 -- 2))
    (fun (seed, alpha_idx) ->
      let alpha = [| 0.5; 1.; 2. |].(alpha_idx) in
      let rng = Rng.create ~seed:(seed + 1000) in
      let caps, paths, weights = random_single_path_instance rng in
      let groups =
        Array.to_list
          (Array.map2
             (fun path w ->
               Problem.single_path (Utility.alpha_fair ~weight:w ~alpha ()) path)
             paths weights)
      in
      let p = Problem.create ~caps ~groups in
      match Oracle.solve_dual ~tol:1e-7 p with
      | exception Oracle.Did_not_converge _ -> QCheck.assume_fail ()
      | dual -> (
        match Oracle.solve ~tol:1e-5 p with
        | exception Oracle.Did_not_converge _ -> false
        | sol ->
          Array.for_all2
            (fun a b -> Fcmp.rel_eq ~rel:5e-3 a b)
            dual.Oracle.rates sol.Oracle.rates))

let prop_xwi_fixed_point_unique =
  (* The paper proves the xWI fixed point is unique; numerically: starting
     the iteration from very different price vectors must reach the same
     rates (cf. the technical report's randomized experiments). *)
  QCheck.Test.make ~name:"xWI fixed point is independent of the initial prices"
    ~count:30 QCheck.(pair small_int (1 -- 3))
    (fun (seed, scale_exp) ->
      let rng = Rng.create ~seed:(seed + 500) in
      let caps, paths, weights = random_single_path_instance rng in
      let groups =
        Array.to_list
          (Array.map2
             (fun path w ->
               Problem.single_path (Utility.alpha_fair ~weight:w ~alpha:1. ()) path)
             paths weights)
      in
      let p = Problem.create ~caps ~groups in
      let solve_from prices =
        let state = Xwi.init_with_prices p ~prices in
        ignore (Xwi.run_until_kkt ~tol:1e-8 ~max_iters:20_000 p Xwi.default_params state);
        state.Xwi.rates
      in
      let n_links = Array.length caps in
      let lo = solve_from (Array.make n_links 1e-12) in
      let hi = solve_from (Array.make n_links (10. ** float_of_int scale_exp)) in
      Array.for_all2 (fun a b -> Fcmp.rel_eq ~rel:1e-4 a b) lo hi)

let prop_multipath_oracle_kkt =
  (* Random multipath instances: the general Oracle must return solutions
     whose KKT residuals certify optimality. *)
  QCheck.Test.make ~name:"multipath oracle solutions satisfy KKT" ~count:20
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 900) in
      let n_links = 3 + Rng.int rng 3 in
      let caps = Array.init n_links (fun _ -> Rng.uniform rng ~lo:1. ~hi:10.) in
      let n_groups = 2 + Rng.int rng 3 in
      let groups =
        List.init n_groups (fun _ ->
            let n_sub = 1 + Rng.int rng 2 in
            let paths =
              List.init n_sub (fun _ ->
                  let len = 1 + Rng.int rng 2 in
                  Array.sub (Rng.permutation rng n_links) 0 len)
            in
            { Problem.utility = Utility.proportional_fair (); paths })
      in
      let p = Problem.create ~caps ~groups in
      match Oracle.solve ~tol:1e-4 p with
      | sol -> Kkt.worst sol.Oracle.kkt <= 1e-4
      | exception Oracle.Did_not_converge _ -> QCheck.assume_fail ())

(* ------------------------------------------------------------------ *)
(* KKT checker *)

let test_kkt_detects_infeasible () =
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u ] in
  let r = Kkt.check p ~rates:[| 8.; 8. |] ~prices:[| 0.125 |] in
  Alcotest.(check bool) "overload detected" true (r.Kkt.feasibility > 0.5)

let test_kkt_detects_bad_stationarity () =
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u ] in
  (* Feasible but prices inconsistent with rates. *)
  let r = Kkt.check p ~rates:[| 5.; 5. |] ~prices:[| 1. |] in
  Alcotest.(check bool) "stationarity violated" true (r.Kkt.stationarity > 0.5)

let test_kkt_accepts_optimum () =
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u ] in
  let r = Kkt.check p ~rates:[| 5.; 5. |] ~prices:[| 0.2 |] in
  Alcotest.(check bool) "optimal accepted" true (Kkt.worst r < 1e-9)

let test_kkt_slackness () =
  let u = Utility.proportional_fair () in
  (* Two links, flow only uses link 0; a positive price on idle link 1 must
     show up as a slackness violation. *)
  let p =
    Problem.create ~caps:[| 10.; 10. |] ~groups:[ Problem.single_path u [| 0 |] ]
  in
  let r = Kkt.check p ~rates:[| 10. |] ~prices:[| 0.1; 0.1 |] in
  Alcotest.(check bool) "slack priced link flagged" true (r.Kkt.slackness > 0.5)

(* ------------------------------------------------------------------ *)
(* Problem structure *)

let test_problem_structure () =
  let u = Utility.proportional_fair () in
  let group = { Problem.utility = u; paths = [ [| 0 |]; [| 1; 2 |] ] } in
  let solo = Problem.single_path u [| 0; 2 |] in
  let p = Problem.create ~caps:[| 1.; 2.; 3. |] ~groups:[ group; solo ] in
  Alcotest.(check int) "flows" 3 (Problem.n_flows p);
  Alcotest.(check int) "groups" 2 (Problem.n_groups p);
  Alcotest.(check bool) "not single path" false (Problem.is_single_path p);
  Alcotest.(check int) "flow 1 group" 0 (Problem.flow_group p 1);
  Alcotest.(check int) "flow 2 group" 1 (Problem.flow_group p 2);
  Alcotest.(check (array int)) "link 2 flows" [| 1; 2 |] (Problem.link_flows p 2);
  let rates = [| 1.; 2.; 4. |] in
  check_close "group rate" 3. (Problem.group_rate p ~rates 0);
  let loads = Array.make (Problem.n_links p) 0. in
  Problem.link_loads_into p ~rates loads;
  check_close "load l0" 5. loads.(0);
  check_close "load l2" 6. loads.(2);
  check_close "path price" 5. (Problem.path_price p ~prices:[| 1.; 2.; 4. |] 2);
  Alcotest.(check bool) "feasible check" false (Problem.feasible p ~rates)

let test_problem_validation () =
  let u = Utility.proportional_fair () in
  Alcotest.check_raises "empty path" (Invalid_argument "Problem.create: empty path")
    (fun () ->
      ignore (Problem.create ~caps:[| 1. |] ~groups:[ Problem.single_path u [||] ]));
  Alcotest.check_raises "bad link"
    (Invalid_argument "Problem.create: link id out of range") (fun () ->
      ignore (Problem.create ~caps:[| 1. |] ~groups:[ Problem.single_path u [| 3 |] ]))

(* ------------------------------------------------------------------ *)
(* Sparse CSR/CSC core vs the legacy reference kernels *)

module Incidence = Nf_num.Incidence
module Reference = Nf_num.Reference
module Shard = Nf_util.Shard

let test_incidence_structure () =
  let u = Utility.proportional_fair () in
  let group = { Problem.utility = u; paths = [ [| 0 |]; [| 1; 2 |] ] } in
  let solo = Problem.single_path u [| 0; 2 |] in
  let p = Problem.create ~caps:[| 1.; 2.; 3. |] ~groups:[ group; solo ] in
  let inc = Problem.incidence p in
  Alcotest.(check int) "nnz" 5 inc.Incidence.nnz;
  Alcotest.(check (array int)) "row_ptr" [| 0; 1; 3; 5 |] inc.Incidence.row_ptr;
  Alcotest.(check (array int))
    "row_cols keeps path order" [| 0; 1; 2; 0; 2 |]
    (Array.sub inc.Incidence.row_cols 0 5);
  Alcotest.(check (array int)) "col_ptr" [| 0; 2; 3; 5 |] inc.Incidence.col_ptr;
  Alcotest.(check (array int))
    "col_rows ascending per link" [| 0; 2; 1; 1; 2 |]
    (Array.sub inc.Incidence.col_rows 0 5);
  Alcotest.(check (array int)) "grp_ptr" [| 0; 2; 3 |] inc.Incidence.grp_ptr;
  Alcotest.(check (array int))
    "grp_flows" [| 0; 1; 2 |]
    (Array.sub inc.Incidence.grp_flows 0 3);
  Alcotest.(check (array int))
    "group_of_flow" [| 0; 0; 1 |] inc.Incidence.group_of_flow;
  Alcotest.(check bool) "multipath => not singleton" false
    inc.Incidence.singleton;
  check_close "caps mirror" 2. (Bigarray.Array1.get inc.Incidence.caps 1)

(* Random mixed single/multipath problem with varied alpha-fair
   utilities: the adversary for the sparse-vs-reference properties. *)
let random_problem rng =
  let n_links = 2 + Rng.int rng 5 in
  let caps = Array.init n_links (fun _ -> Rng.uniform rng ~lo:1. ~hi:10.) in
  let n_groups = 2 + Rng.int rng 5 in
  let groups =
    List.init n_groups (fun _ ->
        let n_sub = 1 + Rng.int rng 2 in
        let paths =
          List.init n_sub (fun _ ->
              let len = 1 + Rng.int rng (min 3 n_links) in
              Array.sub (Rng.permutation rng n_links) 0 len)
        in
        let alpha = [| 0.5; 1.; 2. |].(Rng.int rng 3) in
        let weight = Rng.uniform rng ~lo:0.2 ~hi:5. in
        { Problem.utility = Utility.alpha_fair ~weight ~alpha (); paths })
  in
  Problem.create ~caps ~groups

let prop_sparse_maxmin_matches_reference =
  QCheck.Test.make
    ~name:"sparse water-filling matches the legacy solver within 1e-9"
    ~count:300 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 2000) in
      let p = random_problem rng in
      let n_flows = Problem.n_flows p in
      let weights =
        Array.init n_flows (fun _ -> Rng.uniform rng ~lo:0.2 ~hi:5.)
      in
      let legacy = Reference.maxmin p ~weights in
      let inc = Problem.incidence p in
      let ws = Maxmin.sparse_workspace inc in
      let w = Incidence.vec_of_array weights in
      let rates = Incidence.vec n_flows in
      Maxmin.solve_sparse ws inc ~weights:w ~rates;
      let sparse = Array.make n_flows 0. in
      Incidence.vec_to_array rates sparse;
      Array.for_all2 (Fcmp.rel_eq ~rel:1e-9) legacy.Maxmin.rates sparse)

let prop_sparse_step_matches_reference =
  QCheck.Test.make ~name:"sparse xWI step matches the legacy step within 1e-9"
    ~count:100 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 3000) in
      let p = random_problem rng in
      let state = Xwi.init p in
      let prices = Array.copy state.Xwi.prices in
      let rates = Array.copy state.Xwi.rates in
      let weights = Array.copy state.Xwi.weights in
      let ok = ref true in
      for _ = 1 to 5 do
        Xwi.step p Xwi.default_params state;
        Reference.step p Xwi.default_params ~prices ~rates ~weights;
        ok :=
          !ok
          && Array.for_all2 (Fcmp.rel_eq ~rel:1e-9) prices state.Xwi.prices
          && Array.for_all2 (Fcmp.rel_eq ~rel:1e-9) rates state.Xwi.rates
          && Array.for_all2 (Fcmp.rel_eq ~rel:1e-9) weights state.Xwi.weights
      done;
      !ok)

let bits_equal a b =
  Array.length a = Array.length b
  && Array.for_all2
       (fun x y -> Int64.equal (Int64.bits_of_float x) (Int64.bits_of_float y))
       a b

let prop_sharded_prices_bit_identical =
  QCheck.Test.make ~name:"-j 4 price update is byte-identical to -j 1"
    ~count:40 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 4000) in
      let p = random_problem rng in
      let seq = Xwi.init p in
      Shard.with_pool ~jobs:4 (fun pool ->
          let par = Xwi.init ~pool p in
          let ok = ref true in
          for _ = 1 to 20 do
            Xwi.step p Xwi.default_params seq;
            Xwi.step p Xwi.default_params par;
            ok :=
              !ok
              && bits_equal seq.Xwi.prices par.Xwi.prices
              && bits_equal seq.Xwi.rates par.Xwi.rates
              && bits_equal seq.Xwi.weights par.Xwi.weights
          done;
          !ok))

let test_sharded_long_run_bit_identical () =
  (* One dense instance, 200 steps, every job count: the sharded price
     update must be bit-for-bit the sequential one whatever the chunking. *)
  let rng = Rng.create ~seed:99 in
  let n_links = 24 in
  let caps = Array.init n_links (fun _ -> Rng.uniform rng ~lo:1. ~hi:10.) in
  let groups =
    List.init 60 (fun _ ->
        let len = 1 + Rng.int rng 4 in
        Problem.single_path
          (Utility.alpha_fair ~weight:(Rng.uniform rng ~lo:0.2 ~hi:5.) ~alpha:1. ())
          (Array.sub (Rng.permutation rng n_links) 0 len))
  in
  let p = Problem.create ~caps ~groups in
  let run jobs =
    let step_all state =
      for _ = 1 to 200 do
        Xwi.step p Xwi.default_params state
      done;
      state
    in
    if jobs = 1 then step_all (Xwi.init p)
    else Shard.with_pool ~jobs (fun pool -> step_all (Xwi.init ~pool p))
  in
  let base = run 1 in
  List.iter
    (fun jobs ->
      let s = run jobs in
      Alcotest.(check bool)
        (Printf.sprintf "prices identical at -j %d" jobs)
        true
        (bits_equal base.Xwi.prices s.Xwi.prices);
      Alcotest.(check bool)
        (Printf.sprintf "rates identical at -j %d" jobs)
        true
        (bits_equal base.Xwi.rates s.Xwi.rates))
    [ 2; 3; 4; 7 ]

(* ------------------------------------------------------------------ *)
(* Delta interface: flow churn, gid stability, capacity generations *)

let test_delta_add_remove_commit () =
  let u = Utility.proportional_fair () in
  let p = Problem.create_groups ~caps:[| 10.; 10. |] ~groups:[||] in
  Alcotest.(check int) "starts empty" 0 (Problem.n_groups p);
  let g0 = Problem.generation p in
  let a = Problem.add_group p (Problem.single_path u [| 0 |]) in
  let b = Problem.add_group p (Problem.single_path u [| 0; 1 |]) in
  let c = Problem.add_group p (Problem.single_path u [| 1 |]) in
  Alcotest.(check bool) "dirty before commit" true (Problem.dirty p);
  Problem.commit p;
  Alcotest.(check bool) "clean after commit" false (Problem.dirty p);
  Alcotest.(check bool) "generation moved" false
    (Int.equal g0 (Problem.generation p));
  Alcotest.(check int) "three groups" 3 (Problem.n_groups p);
  (* First commit assigns dense ids in insertion order. *)
  Alcotest.(check (option int)) "a dense 0" (Some 0) (Problem.group_index p a);
  Alcotest.(check int) "gid of dense 1" b (Problem.group_gid p 1);
  (* Remove the middle group: tombstone now, compaction at the next read;
     survivors keep their gids but dense ids shift down. *)
  Problem.remove_group p b;
  Alcotest.(check bool) "b no longer live" false (Problem.mem_group p b);
  Alcotest.(check int) "two groups after compaction" 2 (Problem.n_groups p);
  Alcotest.(check (option int)) "b unmapped" None (Problem.group_index p b);
  Alcotest.(check (option int)) "a keeps dense 0" (Some 0)
    (Problem.group_index p a);
  Alcotest.(check (option int)) "c compacted to dense 1" (Some 1)
    (Problem.group_index p c);
  Alcotest.(check int) "flows follow the compaction" 2 (Problem.n_flows p);
  (* A fresh add after removals gets a fresh gid, never a recycled one. *)
  let d = Problem.add_group p (Problem.single_path u [| 1 |]) in
  Alcotest.(check bool) "gids are never recycled" true
    (d <> a && d <> b && d <> c)

let test_delta_validation () =
  let u = Utility.proportional_fair () in
  let p = Problem.create_groups ~caps:[| 1. |] ~groups:[||] in
  Alcotest.check_raises "empty path"
    (Invalid_argument "Problem.add_group: empty path") (fun () ->
      ignore (Problem.add_group p (Problem.single_path u [||])));
  Alcotest.check_raises "bad link"
    (Invalid_argument "Problem.add_group: link id out of range") (fun () ->
      ignore (Problem.add_group p (Problem.single_path u [| 1 |])));
  let g = Problem.add_group p (Problem.single_path u [| 0 |]) in
  Problem.remove_group p g;
  Alcotest.check_raises "double remove"
    (Invalid_argument
       (Printf.sprintf "Problem.remove_group: gid %d already removed" g))
    (fun () -> Problem.remove_group p g);
  Alcotest.check_raises "unknown gid"
    (Invalid_argument "Problem.remove_group: unknown gid 999") (fun () ->
      Problem.remove_group p 999)

let test_delta_stale_state_guarded () =
  (* Solver state sized for an old snapshot must refuse to step once the
     topology generation moved (silent reuse would read out-of-date dense
     ids — worst case out-of-bounds writes). *)
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u ] in
  let state = Xwi.init p in
  ignore (Problem.add_group p (Problem.single_path u [| 0 |]));
  Problem.commit p;
  Alcotest.check_raises "stale step rejected"
    (Invalid_argument
       "Xwi_core.step: problem topology changed since init; call \
        Xwi_core.resize")
    (fun () -> Xwi.step p Xwi.default_params state);
  (* resize rebuilds against the new snapshot and is steppable again. *)
  let state = Xwi.resize p state in
  Xwi.step p Xwi.default_params state;
  Alcotest.(check int) "resized state covers the new flow" 3
    (Array.length state.Xwi.rates)

let test_delta_caps_midrun () =
  (* Figure 10's capacity-change path: converge, change a link speed with
     [set_cap] mid-run, keep stepping the *same* state (capacity changes
     are not topology changes — no resize), and the allocation must track
     the new capacity. *)
  let u = Utility.proportional_fair () in
  let p = single_link_problem ~cap:10. [ u; u ] in
  let state = Xwi.init p in
  let run = Xwi.run_until_kkt ~tol:1e-9 ~check_every:1 p Xwi.default_params state in
  Alcotest.(check bool) "converged at 10G" true run.Xwi.converged;
  check_rates ~rel:1e-6 "equal shares of 10" [| 5.; 5. |] state.Xwi.rates;
  let topo_gen = Problem.generation p in
  let cap_gen = Problem.cap_generation p in
  Problem.set_cap p 0 20.;
  Alcotest.(check bool) "cap generation bumped" false
    (Int.equal cap_gen (Problem.cap_generation p));
  Alcotest.(check bool) "topology generation unchanged" true
    (Int.equal topo_gen (Problem.generation p));
  let run = Xwi.run_until_kkt ~tol:1e-9 ~check_every:1 p Xwi.default_params state in
  Alcotest.(check bool) "re-converged at 20G" true run.Xwi.converged;
  check_rates ~rel:1e-6 "equal shares of 20" [| 10.; 10. |] state.Xwi.rates;
  Alcotest.(check bool) "warm cap change re-solve satisfies KKT" true
    (Kkt.worst (Kkt.check p ~rates:state.Xwi.rates ~prices:state.Xwi.prices)
    < 1e-8);
  (* Direct writes into [caps] work too, via touch_caps. *)
  (Problem.caps p).(0) <- 10.;
  Problem.touch_caps p;
  ignore (Xwi.run_until_kkt ~tol:1e-9 ~check_every:1 p Xwi.default_params state);
  check_rates ~rel:1e-6 "back to shares of 10" [| 5.; 5. |] state.Xwi.rates

(* A random single-link-id path over the problem's links, for churn
   properties. *)
let random_path rng ~n_links =
  let len = 1 + Rng.int rng (min 3 n_links) in
  Array.sub (Rng.permutation rng n_links) 0 len

let prop_warm_churn_matches_cold =
  QCheck.Test.make
    ~name:"add -> warm solve -> remove -> warm solve lands on the cold fixpoint"
    ~count:20 QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 5000) in
      let p = random_problem rng in
      (* Some random instances have a KKT-residual floor around 1e-8
         (finite-precision xWI), so don't demand convergence at this
         tolerance — run to the floor and compare the allocations. *)
      let tol = 1e-10 in
      let solve st = Xwi.run_until_kkt ~tol ~check_every:1 p Xwi.default_params st in
      let state = ref (Xwi.init p) in
      ignore (solve !state);
      (* Arrival: a fresh proportional-fair flow on a random path. *)
      let gid =
        Problem.add_group p
          (Problem.single_path (Utility.proportional_fair ())
             (random_path rng ~n_links:(Problem.n_links p)))
      in
      Problem.commit p;
      state := Xwi.resize p !state;
      ignore (solve !state);
      (* Departure of the same flow: the final problem is the original. *)
      Problem.remove_group p gid;
      Problem.commit p;
      state := Xwi.resize p !state;
      let warm_run = solve !state in
      let cold_state = Xwi.init p in
      let cold_run = solve cold_state in
      (* Compare *group* totals: multipath sub-flow splits are not unique
         at the optimum (only the group rate is), so per-flow rates of two
         KKT-certified solutions may legitimately differ. Converged
         instances must agree to 1e-9; floor-limited ones (capped at the
         instance's residual floor) get floor-scale slop. *)
      let rel =
        if warm_run.Xwi.converged && cold_run.Xwi.converged then 1e-9 else 1e-8
      in
      let n_groups = Problem.n_groups p in
      let warm_g = Array.make n_groups 0. in
      let cold_g = Array.make n_groups 0. in
      Problem.group_rates_into p ~rates:!state.Xwi.rates warm_g;
      Problem.group_rates_into p ~rates:cold_state.Xwi.rates cold_g;
      Array.for_all2 (Fcmp.rel_eq ~rel) warm_g cold_g)

let prop_kkt_after_random_churn =
  QCheck.Test.make
    ~name:"warm re-solves satisfy KKT across randomized churn" ~count:15
    QCheck.small_int
    (fun seed ->
      let rng = Rng.create ~seed:(seed + 6000) in
      let p = random_problem rng in
      let n_links = Problem.n_links p in
      (* Initial groups get gids 0 .. n-1 (mli contract). *)
      let live = ref (List.init (Problem.n_groups p) Fun.id) in
      (* The always-on service's tolerance: comfortably above any random
         instance's KKT-residual floor, so converged must hold. *)
      let tol = 1e-6 in
      let state = ref (Xwi.init p) in
      ignore (Xwi.run_until_kkt ~tol ~check_every:1 p Xwi.default_params !state);
      let ok = ref true in
      for _ = 1 to 6 do
        (if List.length !live <= 1 || Rng.int rng 2 = 0 then
           let gid =
             Problem.add_group p
               (Problem.single_path (Utility.proportional_fair ())
                  (random_path rng ~n_links))
           in
           live := gid :: !live
         else begin
           let victim = List.nth !live (Rng.int rng (List.length !live)) in
           Problem.remove_group p victim;
           live := List.filter (fun g -> g <> victim) !live
         end);
        Problem.commit p;
        state := Xwi.resize p !state;
        let run =
          Xwi.run_until_kkt ~tol ~check_every:1 p Xwi.default_params !state
        in
        let worst =
          Kkt.worst
            (Kkt.check p ~rates:!state.Xwi.rates ~prices:!state.Xwi.prices)
        in
        ok := !ok && run.Xwi.converged && worst <= tol
      done;
      !ok)

(* ------------------------------------------------------------------ *)
(* Utility fast paths, sparse solve statistics, and solver diagnostics *)

module Diag = Nf_num.Diag
module Metrics = Nf_util.Metrics
module Trace = Nf_util.Trace

let test_utility_fast_paths_bitwise () =
  (* The shape-dispatch evaluators must be *bit-identical* to the closure
     fields: xWI's sparse hot path uses the fast forms while the legacy
     dense path keeps the closures, and the repo's determinism guarantee
     (-j N byte-identical to -j 1, dense matches sparse) rests on the two
     agreeing exactly. *)
  let utilities =
    [
      Utility.proportional_fair ();
      Utility.alpha_fair ~weight:3.5 ~alpha:1. ();
      Utility.alpha_fair ~weight:2. ~alpha:2. ();
      Utility.alpha_fair ~weight:0.25 ~alpha:0.5 ();
      Utility.fct ~size:1e6 ~eps:0.125;
      Utility.make ~name:"custom" ~value:sqrt
        ~deriv:(fun x -> 0.5 /. sqrt x)
        ~inv_deriv:(fun p -> 0.25 /. (p *. p));
    ]
  in
  let points = [ 0.; 1e-30; 1e-9; 0.5; 1.; 3.25; 1e9; 1e300 ] in
  let bits = Int64.bits_of_float in
  List.iter
    (fun u ->
      List.iter
        (fun x ->
          Alcotest.(check int64)
            (Printf.sprintf "%s: deriv_fast(%g)" u.Utility.name x)
            (bits (u.Utility.deriv x))
            (bits (Utility.deriv_fast u x));
          Alcotest.(check int64)
            (Printf.sprintf "%s: rate_from_price_fast(%g)" u.Utility.name x)
            (bits (Utility.rate_from_price u x))
            (bits (Utility.rate_from_price_fast u x)))
        points)
    utilities

let test_maxmin_sparse_stats () =
  (* Parking lot: one long flow over both links, one short per link. Both
     links saturate; stats from the last solve must reflect that. *)
  let caps = [| 1.; 1. |] in
  let paths = [| [| 0; 1 |]; [| 0 |]; [| 1 |] |] in
  let inc =
    Incidence.create ~caps ~paths ~group_of_flow:[| 0; 1; 2 |] ~n_groups:3
  in
  let weights = Incidence.vec_of_array [| 1.; 1.; 1. |] in
  let rates = Incidence.vec 3 in
  let ws = Maxmin.sparse_workspace inc in
  Maxmin.solve_sparse ws inc ~weights ~rates;
  Alcotest.(check bool) "rounds >= 1" true (Maxmin.sparse_rounds ws >= 1);
  Alcotest.(check int) "both links saturated" 2
    (Maxmin.sparse_saturated_links ws);
  Alcotest.(check bool) "final level positive" true
    (Maxmin.sparse_level ws > 0.)

let contains ~needle haystack =
  let n = String.length needle and h = String.length haystack in
  let rec go i = i + n <= h && (String.sub haystack i n = needle || go (i + 1)) in
  n = 0 || go 0

let read_file path =
  let ic = open_in_bin path in
  Fun.protect
    ~finally:(fun () -> close_in_noerr ic)
    (fun () -> really_input_string ic (in_channel_length ic))

let diag_problem () =
  (* Two-link parking lot with proportional fairness: converges in tens
     of iterations at the default tolerance, never in three. *)
  let caps = [| 1.; 1. |] in
  let groups =
    [
      Problem.single_path (Utility.proportional_fair ()) [| 0; 1 |];
      Problem.single_path (Utility.proportional_fair ()) [| 0 |];
      Problem.single_path (Utility.proportional_fair ()) [| 1 |];
    ]
  in
  Problem.create ~caps ~groups

let test_diag_observe_and_report () =
  let p = diag_problem () in
  let state = Xwi.init p in
  let d = Diag.create ~capacity:8 ~n_links:2 ~n_flows:3 () in
  Xwi.set_diag state (Some d);
  let run = Xwi.run_to_fixpoint ~tol:1e-10 p Xwi.default_params state in
  Alcotest.(check bool) "converged" true run.Xwi.converged;
  Alcotest.(check int) "every iteration observed" run.Xwi.iterations
    (Diag.iterations d);
  let samples = Diag.samples d in
  Alcotest.(check bool) "ring non-empty" true (samples <> []);
  Alcotest.(check bool) "ring bounded by capacity" true
    (List.length samples <= 8);
  List.iter
    (fun s ->
      Alcotest.(check bool) "residual finite and non-negative" true
        (s.Diag.s_residual >= 0. && Float.is_finite s.Diag.s_residual);
      Alcotest.(check bool) "wf rounds positive" true (s.Diag.s_wf_rounds >= 1);
      Alcotest.(check bool) "saturated links in range" true
        (s.Diag.s_wf_saturated >= 0 && s.Diag.s_wf_saturated <= 2))
    samples;
  (let iters = List.map (fun s -> s.Diag.s_iter) samples in
   Alcotest.(check (list int)) "samples oldest-first" (List.sort compare iters)
     iters);
  let r = Diag.report d in
  Alcotest.(check int) "report iterations" run.Xwi.iterations
    r.Diag.r_iterations;
  Alcotest.(check bool) "final residual below tol" true
    (r.Diag.r_final_residual <= 1e-10);
  (* The ε ladder tightens left to right, so first-hit iterations must be
     non-decreasing (ignoring never-reached entries). *)
  let prev = ref 0 in
  Array.iter
    (fun (eps, it) ->
      if it >= 0 then begin
        Alcotest.(check bool)
          (Printf.sprintf "eps %g reached no earlier than looser eps" eps)
          true (it >= !prev);
        prev := it
      end)
    r.Diag.r_to_eps;
  Alcotest.(check bool) "tightest default eps reached" true
    (let n = Array.length r.Diag.r_to_eps in
     n > 0 && snd r.Diag.r_to_eps.(n - 1) >= 1);
  List.iter
    (fun (l, delta) ->
      Alcotest.(check bool) "worst link id in range" true (l >= 0 && l < 2);
      Alcotest.(check bool) "worst link delta non-negative" true (delta >= 0.))
    (Diag.worst_links d);
  let json = Diag.report_to_json r in
  Alcotest.(check bool) "report json mentions iterations" true
    (contains ~needle:"\"iterations\"" json)

let test_diag_postmortem_on_nonconvergence () =
  let dir =
    let f = Filename.temp_file "nf_diag_test" "" in
    Sys.remove f;
    Sys.mkdir f 0o700;
    f
  in
  let sink = Trace.make ~kinds:[ Trace.XwiNonconverged ] () in
  let saved = Trace.default () in
  Trace.set_default sink;
  Diag.configure (Some (Diag.default_config ~dir));
  let nonconverged =
    Metrics.counter Metrics.global "nf_xwi_nonconverged_total"
  in
  let before = Metrics.counter_value nonconverged in
  Fun.protect
    ~finally:(fun () ->
      Diag.configure None;
      Trace.set_default saved)
    (fun () ->
      let p = diag_problem () in
      let state = Xwi.init p in
      Alcotest.(check bool) "diag auto-attached under config" true
        (match Xwi.diag state with Some _ -> true | None -> false);
      let run = Xwi.run_to_fixpoint ~max_iters:3 p Xwi.default_params state in
      Alcotest.(check bool) "capped run did not converge" false
        run.Xwi.converged;
      Alcotest.(check int) "nonconverged counter incremented" (before + 1)
        (Metrics.counter_value nonconverged);
      Alcotest.(check int) "one postmortem written" 1
        (Diag.postmortems_written ());
      Alcotest.(check bool) "XwiNonconverged trace event emitted" true
        (List.exists
           (fun e -> e.Trace.kind = Trace.XwiNonconverged)
           (Trace.events sink));
      let path = Filename.concat dir "xwi_postmortem_0000.jsonl" in
      Alcotest.(check bool) "postmortem file exists" true
        (Sys.file_exists path);
      let contents = read_file path in
      Alcotest.(check bool) "postmortem says non-converged" true
        (contains ~needle:"\"converged\":false" contents);
      Alcotest.(check bool) "postmortem names worst links" true
        (contains ~needle:"\"kind\":\"worst_links\"" contents);
      Alcotest.(check bool) "postmortem carries iteration samples" true
        (contains ~needle:"\"kind\":\"iter\"" contents));
  (* A second configure resets the sequence counter. *)
  Alcotest.(check int) "configure resets counter" 0
    (Diag.postmortems_written ())

let () =
  Alcotest.run "nf_num"
    [
      ( "utility",
        [
          quick "log utility" test_alpha_fair_log;
          quick "weighted alpha-fair" test_alpha_fair_weighted;
          quick "validation" test_alpha_fair_validation;
          quick "fct = weighted alpha-fair" test_fct_matches_weighted_alpha;
          quick "deadline utility (EDF)" test_deadline_utility;
          quick "remaining-size utility (SRPT)" test_fct_remaining_tracks;
          quick "price clamping" test_rate_from_price_clamps;
          qcheck prop_inv_deriv_roundtrip;
          qcheck prop_deriv_decreasing;
          qcheck prop_value_increasing;
        ] );
      ( "maxmin",
        [
          quick "single link equal" test_maxmin_single_link_equal;
          quick "single link weighted" test_maxmin_single_link_weighted;
          quick "two bottlenecks" test_maxmin_two_bottlenecks;
          quick "parking lot" test_maxmin_parking_lot;
          quick "validation" test_maxmin_validation;
          qcheck prop_maxmin_is_maxmin;
          qcheck prop_maxmin_feasible_and_positive;
          qcheck prop_maxmin_scale_invariant;
        ] );
      ( "bandwidth_function",
        [
          quick "fig2 curves" test_bf_fig2_shape;
          quick "fig2 allocation at 10G" test_bf_fig2_allocation_10g;
          quick "fig2 allocation at 25G" test_bf_fig2_allocation_25g;
          quick "fair-share roundtrip" test_bf_fair_share_roundtrip;
          quick "origin required" test_bf_create_requires_origin;
          quick "utility consistency" test_bf_utility_consistency;
          quick "waterfill matches single link" test_bf_waterfill_matches_single_link;
          quick "waterfill two links" test_bf_waterfill_two_links;
        ] );
      ( "oracle",
        [
          quick "single link proportional" test_oracle_dual_single_link_proportional;
          quick "single link weighted" test_oracle_dual_single_link_weighted;
          quick "parking lot alpha=1" test_oracle_dual_parking_lot_alpha1;
          quick "parking lot alpha=2" test_oracle_dual_parking_lot_alpha2;
          quick "multipath rejected" test_oracle_dual_rejects_multipath;
          quick "kkt certified" test_oracle_dual_kkt_certified;
        ] );
      ( "xwi",
        [
          quick "single link proportional" test_xwi_single_link_proportional;
          quick "matches dual on parking lot" test_xwi_matches_dual_on_parking_lot;
          quick "fixed-point weights equal rates" test_xwi_prices_drive_weights;
          quick "multipath pooling" test_xwi_multipath_pooling;
          slow "matches dual on random problems" (fun () ->
              match
                QCheck.Test.check_exn prop_xwi_matches_dual_random
              with
              | () -> ()
              | exception QCheck.Test.Test_fail (_, _) ->
                Alcotest.fail "random xWI/dual mismatch");
          qcheck prop_xwi_fixed_point_unique;
          qcheck prop_multipath_oracle_kkt;
        ] );
      ( "kkt",
        [
          quick "detects infeasible" test_kkt_detects_infeasible;
          quick "detects bad stationarity" test_kkt_detects_bad_stationarity;
          quick "accepts optimum" test_kkt_accepts_optimum;
          quick "detects slackness violation" test_kkt_slackness;
        ] );
      ( "problem",
        [
          quick "structure" test_problem_structure;
          quick "validation" test_problem_validation;
        ] );
      ( "delta",
        [
          quick "add/remove/commit, gid stability" test_delta_add_remove_commit;
          quick "validation" test_delta_validation;
          quick "stale solver state guarded" test_delta_stale_state_guarded;
          quick "capacity change mid-run (Fig. 10 path)" test_delta_caps_midrun;
          qcheck prop_warm_churn_matches_cold;
          qcheck prop_kkt_after_random_churn;
        ] );
      ( "sparse",
        [
          quick "incidence structure" test_incidence_structure;
          qcheck prop_sparse_maxmin_matches_reference;
          qcheck prop_sparse_step_matches_reference;
          qcheck prop_sharded_prices_bit_identical;
          quick "long-run shard byte-identity" test_sharded_long_run_bit_identical;
        ] );
      ( "diag",
        [
          quick "utility fast paths bitwise" test_utility_fast_paths_bitwise;
          quick "sparse maxmin stats" test_maxmin_sparse_stats;
          quick "observe and report" test_diag_observe_and_report;
          quick "postmortem on non-convergence"
            test_diag_postmortem_on_nonconvergence;
        ] );
    ]
