(* Tests for nf_util: heap, EWMA, RNG, stats, piecewise functions,
   time series. *)

module Heap = Nf_util.Heap
module Ewma = Nf_util.Ewma
module Rng = Nf_util.Rng
module Stats = Nf_util.Stats
module Piecewise = Nf_util.Piecewise
module Timeseries = Nf_util.Timeseries
module Fcmp = Nf_util.Fcmp
module Units = Nf_util.Units
module Trace = Nf_util.Trace
module Metrics = Nf_util.Metrics
module Profile = Nf_util.Profile

let check_float = Alcotest.(check (float 1e-9))

let check_close ?(eps = 1e-9) what expected actual =
  if not (Fcmp.rel_eq ~rel:eps expected actual) then
    Alcotest.failf "%s: expected %.12g, got %.12g" what expected actual

(* ------------------------------------------------------------------ *)
(* Heap *)

let test_heap_basic () =
  let h = Heap.create ~cmp:compare in
  Alcotest.(check bool) "empty" true (Heap.is_empty h);
  Heap.push h 5;
  Heap.push h 1;
  Heap.push h 3;
  Alcotest.(check int) "length" 3 (Heap.length h);
  Alcotest.(check (option int)) "peek" (Some 1) (Heap.peek h);
  Alcotest.(check (option int)) "pop1" (Some 1) (Heap.pop h);
  Alcotest.(check (option int)) "pop2" (Some 3) (Heap.pop h);
  Alcotest.(check (option int)) "pop3" (Some 5) (Heap.pop h);
  Alcotest.(check (option int)) "pop empty" None (Heap.pop h)

let test_heap_pop_exn_empty () =
  let h = Heap.create ~cmp:compare in
  Alcotest.check_raises "pop_exn" (Invalid_argument "Heap.pop_exn: empty heap")
    (fun () -> ignore (Heap.pop_exn h : int))

let test_heap_clear () =
  let h = Heap.create ~cmp:compare in
  List.iter (Heap.push h) [ 3; 1; 2 ];
  Heap.clear h;
  Alcotest.(check bool) "cleared" true (Heap.is_empty h);
  Heap.push h 42;
  Alcotest.(check (option int)) "usable after clear" (Some 42) (Heap.pop h)

let prop_heap_sorts =
  QCheck.Test.make ~name:"heap sorts like List.sort" ~count:300
    QCheck.(list int)
    (fun xs ->
      let h = Heap.create ~cmp:compare in
      List.iter (Heap.push h) xs;
      Heap.to_sorted_list h = List.sort compare xs)

let prop_heap_interleaved =
  QCheck.Test.make ~name:"heap pop is monotone under interleaving" ~count:200
    QCheck.(list (pair bool small_int))
    (fun ops ->
      let h = Heap.create ~cmp:compare in
      let popped = ref [] in
      List.iter
        (fun (is_push, v) ->
          if is_push then Heap.push h v
          else match Heap.pop h with
            | Some x -> popped := x :: !popped
            | None -> ())
        ops;
      (* Drain the rest; within any run after pushes stop, pops are sorted. *)
      let rec drain () =
        match Heap.pop h with
        | Some x ->
          popped := x :: !popped;
          drain ()
        | None -> ()
      in
      let before_drain = List.length !popped in
      drain ();
      let drained = List.filteri (fun i _ -> i < List.length !popped - before_drain)
          (List.rev !popped) in
      ignore drained;
      (* The final drain must come out sorted. *)
      let tail =
        List.filteri (fun i _ -> i >= before_drain) (List.rev !popped)
      in
      tail = List.sort compare tail)

(* ------------------------------------------------------------------ *)
(* Fheap (the SoA float-keyed heap under the event engine and STFQ) *)

module Fheap = Nf_util.Fheap

let test_fheap_basic () =
  let h = Fheap.create ~capacity:2 ~dummy:(-1) () in
  Alcotest.(check bool) "empty" true (Fheap.is_empty h);
  Fheap.push h ~key:5. ~aux:50 500;
  Fheap.push h ~key:1. ~aux:10 100;
  Fheap.push h ~key:3. ~aux:30 300;
  Alcotest.(check int) "length" 3 (Fheap.length h);
  check_float "top key" 1. (Fheap.top_key h);
  Alcotest.(check int) "top aux" 10 (Fheap.top_aux h);
  Alcotest.(check int) "top" 100 (Fheap.top h);
  Alcotest.(check int) "pop1" 100 (Fheap.pop h);
  Alcotest.(check int) "pop2" 300 (Fheap.pop h);
  Alcotest.(check int) "pop3" 500 (Fheap.pop h);
  Alcotest.(check bool) "empty again" true (Fheap.is_empty h);
  Alcotest.check_raises "pop on empty" (Invalid_argument "Fheap.top: empty heap")
    (fun () -> ignore (Fheap.pop h : int))

let test_fheap_fifo_ties () =
  let h = Fheap.create ~dummy:(-1) () in
  for i = 0 to 9 do
    Fheap.push h ~key:1. ~aux:i i
  done;
  for i = 0 to 9 do
    Alcotest.(check int) (Printf.sprintf "tie %d in FIFO order" i) i (Fheap.pop h)
  done

let test_fheap_clear_and_growth () =
  let h = Fheap.create ~capacity:1 ~dummy:0 () in
  for i = 99 downto 0 do
    Fheap.push h ~key:(float_of_int i) ~aux:i i
  done;
  Alcotest.(check int) "grown length" 100 (Fheap.length h);
  for i = 0 to 99 do
    Alcotest.(check int) (Printf.sprintf "pop %d" i) i (Fheap.pop h)
  done;
  Fheap.push h ~key:1. ~aux:0 7;
  Fheap.clear h;
  Alcotest.(check bool) "cleared" true (Fheap.is_empty h);
  Fheap.push h ~key:2. ~aux:0 9;
  Alcotest.(check int) "usable after clear" 9 (Fheap.pop h)

(* The correctness contract of the event-engine swap: Fheap pops in
   exactly the order of the reference heap ordered by (key, push seq) —
   keys drawn from 8 values so every list has exact-tie groups. *)
let prop_fheap_matches_reference =
  QCheck.Test.make ~name:"fheap pops in reference (key, seq) order" ~count:300
    QCheck.(list (int_bound 7))
    (fun keys ->
      let h = Fheap.create ~capacity:4 ~dummy:(-1) () in
      let ref_heap =
        Heap.create ~cmp:(fun (ka, sa) (kb, sb) ->
            match compare (ka : float) kb with 0 -> compare sa sb | c -> c)
      in
      List.iteri
        (fun i k ->
          let key = float_of_int k /. 4. in
          Fheap.push h ~key ~aux:k i;
          Heap.push ref_heap (key, i))
        keys;
      let ok = ref true in
      let rec drain () =
        match Heap.pop ref_heap with
        | None -> if not (Fheap.is_empty h) then ok := false
        | Some (key, seq) ->
          if Fheap.is_empty h then ok := false
          else if Fheap.top_key h <> key then ok := false
          else if Fheap.pop h <> seq then ok := false
          else drain ()
      in
      drain ();
      !ok)

(* ------------------------------------------------------------------ *)
(* EWMA *)

let test_ewma_gain () =
  let f = Ewma.gain ~g:0.5 in
  Alcotest.(check (option (float 0.))) "unset" None (Ewma.gain_value f);
  Ewma.gain_update f 10.;
  check_float "first sample initializes" 10. (Ewma.gain_value_exn f);
  Ewma.gain_update f 20.;
  check_float "blend" 15. (Ewma.gain_value_exn f)

let test_ewma_timed_convergence () =
  let f = Ewma.timed ~tau:1. in
  Ewma.timed_update f ~now:0. 0.;
  (* Step input of 1.0; after 5 tau the filter should be within 1%. *)
  for i = 1 to 500 do
    Ewma.timed_update f ~now:(float_of_int i *. 0.01) 1.
  done;
  let v = Ewma.timed_value_exn f in
  Alcotest.(check bool) "converged to step" true (v > 0.98 && v <= 1.0)

let test_ewma_timed_out_of_order () =
  let f = Ewma.timed ~tau:1. in
  Ewma.timed_update f ~now:10. 5.;
  Ewma.timed_update f ~now:3. 100.;
  (* dt clamped to 0 -> weight 0 -> unchanged *)
  check_float "out of order ignored" 5. (Ewma.timed_value_exn f)

let test_ewma_rise_time () =
  check_close "rise time formula" (log 10. *. 80e-6) (Ewma.rise_time_90 ~tau:80e-6);
  (* Simulate the step response directly: with tau = 80us the output should
     cross 90% at ~184us. *)
  let f = Ewma.timed ~tau:80e-6 in
  Ewma.timed_update f ~now:0. 0.;
  let crossed = ref None in
  let dt = 1e-7 in
  let t = ref 0. in
  while !crossed = None && !t < 1e-3 do
    t := !t +. dt;
    Ewma.timed_update f ~now:!t 1.;
    if Ewma.timed_value_exn f >= 0.9 then crossed := Some !t
  done;
  match !crossed with
  | None -> Alcotest.fail "never crossed 90%"
  | Some t ->
    Alcotest.(check bool) "crossing near ln(10)*tau" true
      (Float.abs (t -. Ewma.rise_time_90 ~tau:80e-6) < 5e-6)

let test_ewma_reset () =
  let f = Ewma.timed ~tau:1. in
  Ewma.timed_update f ~now:0. 7.;
  Ewma.timed_reset f;
  Alcotest.(check (option (float 0.))) "reset" None (Ewma.timed_value f)

(* ------------------------------------------------------------------ *)
(* RNG *)

let test_rng_deterministic () =
  let a = Rng.create ~seed:42 and b = Rng.create ~seed:42 in
  for _ = 1 to 100 do
    Alcotest.(check int64) "same stream" (Rng.bits64 a) (Rng.bits64 b)
  done

let test_rng_seeds_differ () =
  let a = Rng.create ~seed:1 and b = Rng.create ~seed:2 in
  Alcotest.(check bool) "different streams" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_float_range () =
  let r = Rng.create ~seed:7 in
  for _ = 1 to 1000 do
    let x = Rng.float r 3. in
    if x < 0. || x >= 3. then Alcotest.failf "float out of range: %g" x
  done

let test_rng_int_range () =
  let r = Rng.create ~seed:7 in
  let counts = Array.make 10 0 in
  for _ = 1 to 10_000 do
    let i = Rng.int r 10 in
    counts.(i) <- counts.(i) + 1
  done;
  Array.iteri
    (fun i c ->
      if c < 700 || c > 1300 then Alcotest.failf "bucket %d skewed: %d" i c)
    counts

let test_rng_exponential_mean () =
  let r = Rng.create ~seed:9 in
  let n = 50_000 in
  let acc = ref 0. in
  for _ = 1 to n do
    acc := !acc +. Rng.exponential r ~mean:2.
  done;
  let mean = !acc /. float_of_int n in
  Alcotest.(check bool) "mean near 2" true (Float.abs (mean -. 2.) < 0.05)

let test_rng_split_independent () =
  let r = Rng.create ~seed:3 in
  let a = Rng.split r in
  let b = Rng.split r in
  Alcotest.(check bool) "split streams differ" true (Rng.bits64 a <> Rng.bits64 b)

let test_rng_permutation () =
  let r = Rng.create ~seed:11 in
  let p = Rng.permutation r 100 in
  let sorted = Array.copy p in
  Array.sort compare sorted;
  Alcotest.(check bool) "is a permutation" true
    (Array.to_list sorted = List.init 100 (fun i -> i))

let test_rng_derangement () =
  let r = Rng.create ~seed:13 in
  for _ = 1 to 50 do
    let p = Rng.derangement_pairing r 8 in
    Array.iteri
      (fun i v -> if i = v then Alcotest.fail "fixed point in derangement")
      p
  done

let prop_rng_copy_replays =
  QCheck.Test.make ~name:"rng copy replays the stream" ~count:50
    QCheck.small_int
    (fun seed ->
      let r = Rng.create ~seed in
      ignore (Rng.bits64 r);
      let c = Rng.copy r in
      Rng.bits64 r = Rng.bits64 c)

(* ------------------------------------------------------------------ *)
(* Stats *)

let test_stats_percentile () =
  let xs = [| 1.; 2.; 3.; 4.; 5. |] in
  check_float "median" 3. (Stats.median xs);
  check_float "p0" 1. (Stats.percentile xs 0.);
  check_float "p100" 5. (Stats.percentile xs 100.);
  check_float "p25" 2. (Stats.percentile xs 25.)

let test_stats_mean_stddev () =
  let xs = [| 2.; 4.; 4.; 4.; 5.; 5.; 7.; 9. |] in
  check_float "mean" 5. (Stats.mean xs);
  check_float "stddev" 2. (Stats.stddev xs)

let test_stats_boxplot () =
  let xs = Array.init 101 (fun i -> float_of_int i) in
  let b = Stats.boxplot xs in
  check_float "p25" 25. b.Stats.p25;
  check_float "p50" 50. b.Stats.p50;
  check_float "p75" 75. b.Stats.p75;
  check_float "whisker lo" 0. b.Stats.whisker_lo;
  check_float "whisker hi" 100. b.Stats.whisker_hi

let test_stats_cdf () =
  let xs = [| 1.; 1.; 2.; 3. |] in
  let c = Stats.cdf xs in
  Alcotest.(check int) "distinct points" 3 (List.length c);
  check_float "P(X<=1)" 0.5 (Stats.cdf_at c 1.);
  check_float "P(X<=2.5)" 0.75 (Stats.cdf_at c 2.5);
  check_float "P(X<=0)" 0. (Stats.cdf_at c 0.);
  check_float "P(X<=99)" 1. (Stats.cdf_at c 99.)

let test_stats_jain () =
  check_float "even allocation" 1. (Stats.jain_index [| 3.; 3.; 3. |]);
  check_float "one hog" 0.25 (Stats.jain_index [| 1.; 0.; 0.; 0. |]);
  check_float "all zero" 1. (Stats.jain_index [| 0.; 0. |]);
  Alcotest.(check bool) "intermediate" true
    (let j = Stats.jain_index [| 1.; 2.; 3. |] in
     j > 0.85 && j < 0.86)

let test_stats_online () =
  let o = Stats.Online.create () in
  List.iter (Stats.Online.add o) [ 1.; 2.; 3.; 4. ];
  Alcotest.(check int) "count" 4 (Stats.Online.count o);
  check_float "mean" 2.5 (Stats.Online.mean o);
  check_float "min" 1. (Stats.Online.min o);
  check_float "max" 4. (Stats.Online.max o);
  check_float "variance" 1.25 (Stats.Online.variance o)

let prop_stats_percentile_bounds =
  QCheck.Test.make ~name:"percentile stays within sample range" ~count:200
    QCheck.(pair (list_of_size Gen.(1 -- 50) (float_bound_exclusive 1000.))
              (float_bound_inclusive 100.))
    (fun (xs, p) ->
      let arr = Array.of_list xs in
      let v = Stats.percentile arr p in
      let lo = Array.fold_left Float.min infinity arr in
      let hi = Array.fold_left Float.max neg_infinity arr in
      v >= lo -. 1e-9 && v <= hi +. 1e-9)

let prop_online_matches_batch =
  QCheck.Test.make ~name:"online mean matches batch mean" ~count:200
    QCheck.(list_of_size Gen.(1 -- 60) (float_bound_exclusive 100.))
    (fun xs ->
      let o = Stats.Online.create () in
      List.iter (Stats.Online.add o) xs;
      Fcmp.rel_eq ~rel:1e-9 (Stats.Online.mean o) (Stats.mean (Array.of_list xs)))

(* ------------------------------------------------------------------ *)
(* Piecewise *)

let test_piecewise_eval () =
  let f = Piecewise.of_points [ (0., 0.); (1., 2.); (3., 2.); (4., 6.) ] in
  check_float "at breakpoint" 2. (Piecewise.eval f 1.);
  check_float "interior" 1. (Piecewise.eval f 0.5);
  check_float "flat region" 2. (Piecewise.eval f 2.);
  check_float "last segment" 4. (Piecewise.eval f 3.5);
  check_float "extension beyond" 10. (Piecewise.eval f 5.)

let test_piecewise_inverse () =
  let f = Piecewise.of_points [ (0., 0.); (2., 10.); (2.5, 15.) ] in
  check_float "inverse interior" 1. (Piecewise.inverse f 5.);
  check_float "inverse breakpoint" 2. (Piecewise.inverse f 10.);
  check_float "inverse extension" 3. (Piecewise.inverse f 20.)

let test_piecewise_invalid () =
  Alcotest.check_raises "x not increasing"
    (Invalid_argument "Piecewise.of_points: x must be strictly increasing")
    (fun () -> ignore (Piecewise.of_points [ (0., 0.); (0., 1.) ]));
  Alcotest.check_raises "y decreasing"
    (Invalid_argument "Piecewise.of_points: y must be non-decreasing")
    (fun () -> ignore (Piecewise.of_points [ (0., 1.); (1., 0.) ]))

let test_piecewise_integral_constant () =
  (* f(x) = 2 on [0, 4]: integral of 2^-1 over [0, 3] = 1.5 *)
  let f = Piecewise.of_points [ (0., 2.); (4., 2.) ] in
  check_close "constant alpha=1" 1.5 (Piecewise.integral_pow f ~alpha:1. 3.)

let test_piecewise_integral_linear () =
  (* f(x) = x on [0,10]; integral x^-0.5 dx over [1, 4] = 2(2 - 1) = 2 *)
  let f = Piecewise.of_points [ (0., 0.); (10., 10.) ] in
  check_close "linear alpha=0.5" 2.
    (Piecewise.integral_pow_between f ~alpha:0.5 ~lo:1. ~hi:4.);
  (* alpha = 1: integral 1/x over [1, e] = 1 *)
  check_close "linear alpha=1" 1.
    (Piecewise.integral_pow_between f ~alpha:1. ~lo:1. ~hi:(exp 1.))

let prop_piecewise_inverse_roundtrip =
  QCheck.Test.make ~name:"inverse roundtrips on increasing curves" ~count:200
    QCheck.(pair (list_of_size Gen.(2 -- 8) (float_bound_exclusive 10.))
              (float_bound_inclusive 1.))
    (fun (deltas, frac) ->
      (* Build a strictly increasing curve from positive deltas. *)
      let deltas = List.map (fun d -> d +. 0.01) deltas in
      let pts =
        List.fold_left
          (fun acc d ->
            match acc with
            | (x, y) :: _ -> (x +. d, y +. d) :: acc
            | [] -> assert false)
          [ (0., 0.) ] deltas
      in
      let f = Piecewise.of_points (List.rev pts) in
      let x = frac *. Piecewise.max_x f in
      let y = Piecewise.eval f x in
      Fcmp.rel_eq ~rel:1e-6 (Piecewise.eval f (Piecewise.inverse f y)) y)

let prop_piecewise_integral_matches_quadrature =
  QCheck.Test.make ~name:"closed-form integral matches numeric quadrature"
    ~count:100
    QCheck.(pair (float_range 0.25 4.) small_int)
    (fun (alpha, seed) ->
      let rng = Rng.create ~seed in
      (* random increasing positive curve *)
      let pts = ref [ (0., Rng.uniform rng ~lo:0.5 ~hi:2.) ] in
      for _ = 1 to 4 do
        match !pts with
        | (x, y) :: _ ->
          pts :=
            ( x +. Rng.uniform rng ~lo:0.5 ~hi:2.,
              y +. Rng.uniform rng ~lo:0. ~hi:2. )
            :: !pts
        | [] -> assert false
      done;
      let f = Piecewise.of_points (List.rev !pts) in
      let lo = 0.2 and hi = Piecewise.max_x f -. 0.1 in
      let exact = Piecewise.integral_pow_between f ~alpha ~lo ~hi in
      (* midpoint rule, 4000 slices *)
      let n = 4000 in
      let h = (hi -. lo) /. float_of_int n in
      let acc = ref 0. in
      for i = 0 to n - 1 do
        let x = lo +. ((float_of_int i +. 0.5) *. h) in
        acc := !acc +. (Piecewise.eval f x ** -.alpha *. h)
      done;
      Fcmp.rel_eq ~rel:1e-3 exact !acc)

let prop_piecewise_integral_additive =
  QCheck.Test.make ~name:"integral is additive over ranges" ~count:200
    QCheck.(triple (float_range 0.5 2.) (float_range 0.1 4.) (float_range 0.1 4.))
    (fun (alpha, a, b) ->
      let f = Piecewise.of_points [ (0., 1.); (5., 6.) ] in
      let lo = Float.min a b and hi = Float.max a b in
      let mid = 0.5 *. (lo +. hi) in
      let whole = Piecewise.integral_pow_between f ~alpha ~lo ~hi in
      let parts =
        Piecewise.integral_pow_between f ~alpha ~lo ~hi:mid
        +. Piecewise.integral_pow_between f ~alpha ~lo:mid ~hi
      in
      Fcmp.rel_eq ~rel:1e-9 whole parts)

(* ------------------------------------------------------------------ *)
(* Timeseries *)

let test_timeseries_basics () =
  let ts = Timeseries.create ~name:"x" () in
  Alcotest.(check bool) "empty" true (Timeseries.is_empty ts);
  Timeseries.add ts ~time:0. 1.;
  Timeseries.add ts ~time:1. 2.;
  Timeseries.add ts ~time:2. 4.;
  Alcotest.(check int) "length" 3 (Timeseries.length ts);
  Alcotest.(check (option (pair (float 0.) (float 0.)))) "last" (Some (2., 4.))
    (Timeseries.last ts);
  Alcotest.(check (option (float 0.))) "value before start" None
    (Timeseries.value_at ts (-1.));
  Alcotest.(check (option (float 0.))) "sample and hold" (Some 2.)
    (Timeseries.value_at ts 1.5);
  Alcotest.(check (option (float 0.))) "after end" (Some 4.)
    (Timeseries.value_at ts 10.)

let test_timeseries_out_of_order () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:1. 1.;
  Alcotest.check_raises "time ordered"
    (Invalid_argument "Timeseries.add: samples must be time-ordered")
    (fun () -> Timeseries.add ts ~time:0.5 2.)

let test_timeseries_mean_over () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0. 1.;
  Timeseries.add ts ~time:1. 3.;
  (* signal: 1 on [0,1), 3 on [1,2): mean over [0,2] = 2 *)
  (match Timeseries.mean_over ts ~t0:0. ~t1:2. with
  | Some m -> check_float "time-weighted mean" 2. m
  | None -> Alcotest.fail "expected a mean");
  Alcotest.(check (option (float 0.))) "before first sample" None
    (Timeseries.mean_over ts ~t0:(-2.) ~t1:(-1.))

let test_timeseries_resample () =
  let ts = Timeseries.create () in
  Timeseries.add ts ~time:0. 5.;
  Timeseries.add ts ~time:1. 6.;
  let grid = Timeseries.resample ts ~t0:0. ~t1:1.5 ~dt:0.5 in
  Alcotest.(check int) "grid points" 4 (List.length grid);
  match grid with
  | (_, v0) :: (_, v1) :: (_, v2) :: (_, v3) :: [] ->
    check_float "g0" 5. v0;
    check_float "g1" 5. v1;
    check_float "g2" 6. v2;
    check_float "g3" 6. v3
  | _ -> Alcotest.fail "unexpected grid shape"

let test_timeseries_smooth () =
  let ts = Timeseries.create () in
  for i = 0 to 100 do
    Timeseries.add ts ~time:(float_of_int i *. 0.1) 10.
  done;
  let sm = Timeseries.smooth ts ~tau:0.2 in
  match Timeseries.last sm with
  | Some (_, v) -> check_float "smoothing a constant is identity" 10. v
  | None -> Alcotest.fail "no samples"

(* ------------------------------------------------------------------ *)
(* Units & Fcmp *)

let test_units () =
  check_float "gbps" 1e10 (Units.gbps 10.);
  check_float "usec" 1.6e-5 (Units.usec 16.);
  check_float "bytes" 12e3 (Units.kb 12.);
  check_close "transmission time" 1.2e-6
    (Units.transmission_time ~bytes:1500. ~rate_bps:1e10)

let test_fcmp () =
  Alcotest.(check bool) "approx_eq" true (Fcmp.approx_eq 1. (1. +. 1e-12));
  Alcotest.(check bool) "within_fraction yes" true
    (Fcmp.within_fraction ~frac:0.1 ~actual:95. ~target:100.);
  Alcotest.(check bool) "within_fraction no" false
    (Fcmp.within_fraction ~frac:0.1 ~actual:80. ~target:100.);
  check_float "clamp" 1. (Fcmp.clamp ~lo:0. ~hi:1. 3.);
  Alcotest.(check bool) "is_finite nan" false (Fcmp.is_finite Float.nan)

(* ------------------------------------------------------------------ *)
(* Trace *)

let test_trace_ring () =
  let tr = Trace.make ~capacity:4 () in
  for i = 1 to 6 do
    Trace.emit tr Trace.Enqueue ~subject:i ~time:(float_of_int i)
      (float_of_int (100 * i))
  done;
  Alcotest.(check int) "accepted all six" 6 (Trace.emitted tr);
  let evs = Trace.events tr in
  Alcotest.(check int) "ring keeps capacity" 4 (List.length evs);
  Alcotest.(check (list int))
    "oldest first, oldest two evicted" [ 3; 4; 5; 6 ]
    (List.map (fun e -> e.Trace.subject) evs)

let test_trace_filters () =
  let tr = Trace.make ~kinds:[ Trace.Drop; Trace.FlowDone ] ~subjects:[ 7 ] () in
  Alcotest.(check bool) "on Drop" true (Trace.on tr Trace.Drop);
  Alcotest.(check bool) "off Enqueue" false (Trace.on tr Trace.Enqueue);
  Trace.emit tr Trace.Drop ~subject:7 ~time:1. 1500.;
  Trace.emit tr Trace.Drop ~subject:8 ~time:2. 1500.;
  (* wrong subject *)
  Trace.emit tr Trace.Enqueue ~subject:7 ~time:3. 1500.;
  (* wrong kind *)
  Trace.emit tr Trace.FlowDone ~subject:7 ~time:4. 0.01;
  Alcotest.(check int) "only matching events pass" 2 (Trace.emitted tr);
  Alcotest.(check (list string))
    "kinds in order" [ "drop"; "flow_done" ]
    (List.map (fun e -> Trace.kind_name e.Trace.kind) (Trace.events tr))

let test_trace_null_disabled () =
  List.iter
    (fun k ->
      Alcotest.(check bool)
        (Printf.sprintf "null sink off for %s" (Trace.kind_name k))
        false (Trace.on Trace.null k))
    Trace.all_kinds;
  Trace.emit Trace.null Trace.Drop ~subject:0 ~time:0. 0.;
  Alcotest.(check int) "null sink accepts nothing" 0 (Trace.emitted Trace.null)

(* The zero-cost-when-disabled contract: the guarded hot-path pattern
   [if Trace.on tr k then Trace.emit ...] must allocate nothing when the
   sink rejects the kind. The guard itself is an int mask test; only the
   skipped [emit] call would box its float arguments. *)
let test_trace_disabled_no_alloc () =
  let tr = Trace.make ~capacity:16 ~kinds:[ Trace.FlowDone ] () in
  let before = Gc.minor_words () in
  for i = 1 to 10_000 do
    (* The float arguments sit inside the guarded branch, so a rejected
       kind never evaluates (or boxes) them — same shape as the hot paths. *)
    if Trace.on tr Trace.Drop then
      Trace.emit tr Trace.Drop ~subject:i ~time:(float_of_int i) 1500.
  done;
  let allocated = Gc.minor_words () -. before in
  Alcotest.(check int) "nothing emitted" 0 (Trace.emitted tr);
  if allocated > 256. then
    Alcotest.failf "disabled trace path allocated %.0f minor words" allocated

let test_trace_jsonl_file () =
  let path = Filename.temp_file "nf_trace" ".jsonl" in
  Fun.protect
    ~finally:(fun () -> try Sys.remove path with Sys_error _ -> ())
    (fun () ->
      (* capacity 2 forces mid-run batch flushes *)
      let tr = Trace.make ~capacity:2 ~path () in
      Trace.emit tr Trace.FlowStart ~subject:0 ~time:0. 600_000.;
      Trace.emit tr Trace.Drop ~subject:3 ~time:1e-3 ~aux:1. 1500.;
      Trace.emit tr Trace.FlowDone ~subject:0 ~time:2e-3 0.002;
      Trace.close tr;
      let ic = open_in path in
      let lines = ref [] in
      (try
         while true do
           lines := input_line ic :: !lines
         done
       with End_of_file -> close_in ic);
      let lines = List.rev !lines in
      Alcotest.(check int) "three JSONL lines" 3 (List.length lines);
      Alcotest.(check string)
        "first line" "{\"time\":0,\"kind\":\"flow_start\",\"subject\":0,\"value\":600000}"
        (List.nth lines 0);
      Alcotest.(check string)
        "aux present when set"
        "{\"time\":0.001,\"kind\":\"drop\",\"subject\":3,\"value\":1500,\"aux\":1}"
        (List.nth lines 1);
      List.iter
        (fun l ->
          Alcotest.(check bool) "line is a JSON object" true
            (String.length l > 2 && l.[0] = '{' && l.[String.length l - 1] = '}'))
        lines)

let test_trace_default_sink () =
  Alcotest.(check bool) "default starts null" true (Trace.default () == Trace.null);
  let tr = Trace.make ~capacity:8 () in
  Trace.set_default tr;
  Fun.protect
    ~finally:(fun () -> Trace.set_default Trace.null)
    (fun () ->
      Trace.emit (Trace.default ()) Trace.XwiIter ~subject:0 ~time:1. 1.;
      Alcotest.(check int) "default sink receives" 1 (Trace.emitted tr))

(* ------------------------------------------------------------------ *)
(* Metrics *)

let test_metrics_counter_gauge () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~help:"packets" "test_packets_total" in
  Metrics.incr c;
  Metrics.incr c;
  Metrics.add c 3;
  Alcotest.(check int) "counter" 5 (Metrics.counter_value c);
  Alcotest.check_raises "negative add rejected"
    (Invalid_argument "Metrics.add: negative increment") (fun () ->
      Metrics.add c (-1));
  let c' = Metrics.counter r "test_packets_total" in
  Metrics.incr c';
  Alcotest.(check int) "re-registration is the same counter" 6
    (Metrics.counter_value c);
  let g = Metrics.gauge r "test_depth" in
  Metrics.set_gauge g 2.5;
  Metrics.max_gauge g 1.;
  Alcotest.(check (float 0.)) "max_gauge keeps larger" 2.5 (Metrics.gauge_value g);
  Metrics.max_gauge g 4.;
  Alcotest.(check (float 0.)) "max_gauge takes larger" 4. (Metrics.gauge_value g);
  Alcotest.check_raises "kind mismatch"
    (Invalid_argument
       "Metrics: \"test_depth\" is already registered as a gauge, not a counter")
    (fun () -> ignore (Metrics.counter r "test_depth" : Metrics.counter));
  Metrics.reset r;
  Alcotest.(check int) "reset zeroes counters" 0 (Metrics.counter_value c);
  Alcotest.(check (float 0.)) "reset zeroes gauges" 0. (Metrics.gauge_value g)

let test_metrics_histogram () =
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[ 1.; 10.; 100. ] "test_latency" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50.; 500.; 7. ];
  Alcotest.(check int) "count" 5 (Metrics.histogram_count h);
  Alcotest.(check (float 1e-9)) "sum" 562.5 (Metrics.histogram_sum h)

let test_metrics_prometheus () =
  let r = Metrics.create () in
  let c = Metrics.counter r ~help:"demo counter" "demo_total" in
  Metrics.add c 7;
  let h = Metrics.histogram r ~buckets:[ 1.; 10. ] "demo_hist" in
  List.iter (Metrics.observe h) [ 0.5; 5.; 50. ];
  let page = Metrics.to_prometheus r in
  let expect =
    "# HELP demo_total demo counter\n# TYPE demo_total counter\ndemo_total 7\n\
     # TYPE demo_hist histogram\n\
     demo_hist_bucket{le=\"1\"} 1\ndemo_hist_bucket{le=\"10\"} 2\n\
     demo_hist_bucket{le=\"+Inf\"} 3\ndemo_hist_sum 55.5\ndemo_hist_count 3\n"
  in
  Alcotest.(check string) "exposition page" expect page

let test_metrics_json_and_fold () =
  let r = Metrics.create () in
  let c = Metrics.counter r "a_total" in
  Metrics.add c 2;
  let g = Metrics.gauge r "b_depth" in
  Metrics.set_gauge g 1.5;
  let json = Metrics.to_json r in
  Alcotest.(check string) "json"
    "{\"metrics\": [{\"name\": \"a_total\", \"type\": \"counter\", \"value\": 2}, \
     {\"name\": \"b_depth\", \"type\": \"gauge\", \"value\": 1.5}]}"
    json;
  let folded =
    Metrics.fold_values r ~init:[] ~f:(fun acc ~id ~name v ->
        (id, name, v) :: acc)
  in
  Alcotest.(check int) "fold visits all" 2 (List.length folded);
  let ids = List.rev_map (fun (id, _, _) -> id) folded in
  Alcotest.(check (list int)) "ids are registration order" [ 0; 1 ] ids

(* ------------------------------------------------------------------ *)
(* Profile *)

let test_profile_accounting () =
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    (fun () ->
      let r = Profile.time "work" (fun () -> 41 + 1) in
      Alcotest.(check int) "thunk result returned" 42 r;
      Profile.record "work" 0.5;
      Profile.record "other" 0.1;
      match Profile.categories () with
      | (cat1, calls1, sec1) :: (cat2, _, _) :: [] ->
        Alcotest.(check string) "most expensive first" "work" cat1;
        Alcotest.(check int) "two accounted calls" 2 calls1;
        Alcotest.(check bool) "seconds accumulated" true (sec1 >= 0.5);
        Alcotest.(check string) "second category" "other" cat2
      | rows ->
        Alcotest.failf "expected 2 categories, got %d" (List.length rows))

let test_profile_disabled_is_passthrough () =
  Profile.reset ();
  Profile.set_enabled false;
  let r = Profile.time "ignored" (fun () -> "ok") in
  Alcotest.(check string) "passthrough result" "ok" r;
  Alcotest.(check int) "nothing recorded" 0
    (List.length (Profile.categories ()))

(* ------------------------------------------------------------------ *)
(* Shard: the blocking domain pool behind the sharded price update *)

module Shard = Nf_util.Shard

let prop_shard_chunks_partition =
  QCheck.Test.make ~name:"chunks exactly partition [0, n)" ~count:300
    QCheck.(pair (0 -- 5000) (1 -- 9))
    (fun (n, jobs) ->
      let ok = ref true in
      let prev_hi = ref 0 in
      for k = 0 to jobs - 1 do
        let lo, hi = Shard.chunk ~n ~jobs k in
        if lo <> !prev_hi || hi < lo then ok := false;
        prev_hi := hi
      done;
      !ok && !prev_hi = n)

let test_shard_run_covers () =
  Shard.with_pool ~jobs:4 (fun pool ->
      Alcotest.(check int) "jobs" 4 (Shard.jobs pool);
      let n = 1013 in
      let hits = Array.make n 0 in
      (* Each index is written exactly once, by whichever domain owns its
         chunk; disjointness makes the unsynchronized writes safe. *)
      Shard.run pool ~n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "every index once" true
        (Array.for_all (fun c -> c = 1) hits);
      (* The pool is reusable. *)
      Shard.run pool ~n (fun lo hi ->
          for i = lo to hi - 1 do
            hits.(i) <- hits.(i) + 1
          done);
      Alcotest.(check bool) "second run too" true
        (Array.for_all (fun c -> c = 2) hits))

let test_shard_exception_propagates () =
  Shard.with_pool ~jobs:3 (fun pool ->
      let boom lo _hi = if lo = 0 then failwith "chunk zero failed" in
      Alcotest.check_raises "caller chunk exception wins"
        (Failure "chunk zero failed") (fun () -> Shard.run pool ~n:30 boom);
      (* The failed run must not poison the pool. *)
      let total = Atomic.make 0 in
      Shard.run pool ~n:30 (fun lo hi ->
          ignore (Atomic.fetch_and_add total (hi - lo)));
      Alcotest.(check int) "pool survives a failed run" 30 (Atomic.get total))

let test_shard_stop_idempotent () =
  let pool = Shard.create ~jobs:2 in
  Shard.run pool ~n:4 (fun _ _ -> ());
  Shard.stop pool;
  Shard.stop pool;
  Alcotest.check_raises "run after stop rejected"
    (Invalid_argument "Shard.run: pool is stopped") (fun () ->
      Shard.run pool ~n:4 (fun _ _ -> ()))

(* ------------------------------------------------------------------ *)
(* Gcstats: per-category allocation accounting and the alloc audit *)

module Gcstats = Nf_util.Gcstats

let test_gcstats_record_and_categories () =
  Gcstats.reset ();
  Gcstats.record 3 100.;
  Gcstats.record 3 50.;
  Gcstats.record 7 600.;
  (match Gcstats.categories () with
  | [ (c1, calls1, b1); (c2, calls2, b2) ] ->
      Alcotest.(check int) "most-allocating first" 7 c1;
      Alcotest.(check int) "one call" 1 calls1;
      Alcotest.(check (float 0.)) "bytes" 600. b1;
      Alcotest.(check int) "second category" 3 c2;
      Alcotest.(check int) "two calls accumulated" 2 calls2;
      Alcotest.(check (float 0.)) "bytes accumulated" 150. b2
  | rows -> Alcotest.failf "expected 2 categories, got %d" (List.length rows));
  Gcstats.reset ();
  Alcotest.(check int) "reset clears" 0 (List.length (Gcstats.categories ()))

let test_gcstats_publish_idempotent () =
  let r = Metrics.create () in
  Gcstats.publish ~registry:r ();
  let minor = Metrics.counter r "nf_gc_minor_collections_total" in
  let allocated = Metrics.counter r "nf_gc_allocated_bytes_total" in
  let first = Metrics.counter_value allocated in
  Alcotest.(check bool) "allocated bytes positive" true (first > 0);
  Alcotest.(check bool) "minor collections non-negative" true
    (Metrics.counter_value minor >= 0);
  ignore (Sys.opaque_identity (Array.make 1024 0.) : float array);
  Gcstats.publish ~registry:r ();
  (* Counters are raised to process-lifetime totals: republishing must
     keep them monotone, never double-count. *)
  let second = Metrics.counter_value allocated in
  Alcotest.(check bool) "monotone across publishes" true (second >= first);
  Alcotest.(check bool) "heap gauge present and positive" true
    (Metrics.gauge_value (Metrics.gauge r "nf_gc_heap_bytes") > 0.)

let test_gcstats_bytes_per_iteration () =
  let sink = ref [||] in
  let allocating () =
    sink := Sys.opaque_identity (Array.make 8 0.)
  in
  let b = Gcstats.bytes_per_iteration ~warmup:16 ~iters:2_000 allocating in
  (* 8 floats + header = 72 bytes on 64-bit; quantization noise is
     amortized over the iteration count. *)
  Alcotest.(check bool)
    (Printf.sprintf "allocating loop measured (%.1f B/iter)" b)
    true
    (b >= 64. && b <= 96.);
  let clean () = () in
  let b0 = Gcstats.bytes_per_iteration ~warmup:16 ~iters:2_000 clean in
  Alcotest.(check bool)
    (Printf.sprintf "empty loop measures clean (%.3f B/iter)" b0)
    true (Float.abs b0 <= 1.)

let test_profile_time_feeds_gcstats () =
  Profile.reset ();
  Gcstats.reset ();
  Profile.set_enabled true;
  Gcstats.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Gcstats.set_enabled false;
      Profile.set_enabled false;
      Gcstats.reset ();
      Profile.reset ())
    (fun () ->
      let sink = ref [||] in
      let r =
        Profile.time "gcstats_probe" (fun () ->
            sink := Sys.opaque_identity (Array.make 4096 0.);
            17)
      in
      Alcotest.(check int) "thunk result returned" 17 r;
      let id = Profile.intern "gcstats_probe" in
      match
        List.find_opt (fun (c, _, _) -> c = id) (Gcstats.categories ())
      with
      | Some (_, calls, bytes) ->
          Alcotest.(check int) "one call recorded" 1 calls;
          Alcotest.(check bool) "allocation attributed to category" true
            (bytes >= 4096. *. 8.)
      | None -> Alcotest.fail "Profile.time did not record into Gcstats")

let test_metrics_histogram_float_bounds () =
  (* Non-representable bucket bounds must label with the exact stored
     float ([%.17g]), not a rounded [%g], so the le labels round-trip to
     the bound the histogram actually cuts on. *)
  let r = Metrics.create () in
  let h = Metrics.histogram r ~buckets:[ 0.1; 2.5 ] "cutover" in
  List.iter (Metrics.observe h) [ 0.05; 1.; 7. ];
  let page = Metrics.to_prometheus r in
  let expect =
    "# TYPE cutover histogram\n\
     cutover_bucket{le=\"0.10000000000000001\"} 1\n\
     cutover_bucket{le=\"2.5\"} 2\n\
     cutover_bucket{le=\"+Inf\"} 3\n\
     cutover_sum 8.0500000000000007\ncutover_count 3\n"
  in
  Alcotest.(check string) "exact float bound labels" expect page

let test_metrics_help_escaping () =
  let r = Metrics.create () in
  let c =
    Metrics.counter r ~help:"path C:\\tmp\nsecond line" "escape_total"
  in
  Metrics.incr c;
  let page = Metrics.to_prometheus r in
  let expect =
    "# HELP escape_total path C:\\\\tmp\\nsecond line\n\
     # TYPE escape_total counter\nescape_total 1\n"
  in
  Alcotest.(check string) "backslash and newline escaped" expect page;
  (* Each metric still renders on its own lines: one HELP, one TYPE, one
     sample — the raw newline must not have split the HELP line. *)
  Alcotest.(check int) "exposition stays 3 lines" 3
    (List.length
       (List.filter (fun s -> s <> "") (String.split_on_char '\n' page)))

let test_shard_run_timings () =
  Shard.with_pool ~jobs:3 (fun pool ->
      let timings = Array.make 3 nan in
      Shard.run pool ~timings ~n:300 (fun lo hi ->
          let s = ref 0. in
          for i = lo to hi - 1 do
            s := !s +. float_of_int i
          done;
          ignore (Sys.opaque_identity !s : float));
      Array.iteri
        (fun k dt ->
          Alcotest.(check bool)
            (Printf.sprintf "chunk %d timing filled and sane" k)
            true
            (Float.is_finite dt && dt >= 0.))
        timings;
      (* Entries beyond the chunk count are left untouched. *)
      let short = Array.make 5 (-1.) in
      Shard.run pool ~timings:short ~n:30 (fun _ _ -> ());
      Alcotest.(check (float 0.)) "extra entries untouched" (-1.) short.(4))

let quick name f = Alcotest.test_case name `Quick f

let qcheck = QCheck_alcotest.to_alcotest

let () =
  Alcotest.run "nf_util"
    [
      ( "heap",
        [
          quick "basic order" test_heap_basic;
          quick "pop_exn on empty" test_heap_pop_exn_empty;
          quick "clear" test_heap_clear;
          qcheck prop_heap_sorts;
          qcheck prop_heap_interleaved;
        ] );
      ( "fheap",
        [
          quick "basic order" test_fheap_basic;
          quick "FIFO on equal keys" test_fheap_fifo_ties;
          quick "clear and growth" test_fheap_clear_and_growth;
          qcheck prop_fheap_matches_reference;
        ] );
      ( "ewma",
        [
          quick "fixed gain" test_ewma_gain;
          quick "timed converges to step" test_ewma_timed_convergence;
          quick "out-of-order samples ignored" test_ewma_timed_out_of_order;
          quick "90% rise time" test_ewma_rise_time;
          quick "reset" test_ewma_reset;
        ] );
      ( "rng",
        [
          quick "deterministic" test_rng_deterministic;
          quick "seeds differ" test_rng_seeds_differ;
          quick "float range" test_rng_float_range;
          quick "int uniformity" test_rng_int_range;
          quick "exponential mean" test_rng_exponential_mean;
          quick "split independence" test_rng_split_independent;
          quick "permutation" test_rng_permutation;
          quick "derangement" test_rng_derangement;
          qcheck prop_rng_copy_replays;
        ] );
      ( "stats",
        [
          quick "percentiles" test_stats_percentile;
          quick "mean/stddev" test_stats_mean_stddev;
          quick "boxplot" test_stats_boxplot;
          quick "cdf" test_stats_cdf;
          quick "jain index" test_stats_jain;
          quick "online accumulator" test_stats_online;
          qcheck prop_stats_percentile_bounds;
          qcheck prop_online_matches_batch;
        ] );
      ( "piecewise",
        [
          quick "eval" test_piecewise_eval;
          quick "inverse" test_piecewise_inverse;
          quick "validation" test_piecewise_invalid;
          quick "integral of constant" test_piecewise_integral_constant;
          quick "integral of linear" test_piecewise_integral_linear;
          qcheck prop_piecewise_inverse_roundtrip;
          qcheck prop_piecewise_integral_additive;
          qcheck prop_piecewise_integral_matches_quadrature;
        ] );
      ( "timeseries",
        [
          quick "basics" test_timeseries_basics;
          quick "ordering enforced" test_timeseries_out_of_order;
          quick "time-weighted mean" test_timeseries_mean_over;
          quick "resample" test_timeseries_resample;
          quick "smooth constant" test_timeseries_smooth;
        ] );
      ("units", [ quick "conversions" test_units; quick "fcmp" test_fcmp ]);
      ( "trace",
        [
          quick "ring keeps newest" test_trace_ring;
          quick "kind and subject filters" test_trace_filters;
          quick "null sink disabled" test_trace_null_disabled;
          quick "disabled path allocates nothing" test_trace_disabled_no_alloc;
          quick "jsonl file sink" test_trace_jsonl_file;
          quick "default sink" test_trace_default_sink;
        ] );
      ( "metrics",
        [
          quick "counter and gauge" test_metrics_counter_gauge;
          quick "histogram" test_metrics_histogram;
          quick "prometheus exposition" test_metrics_prometheus;
          quick "exact float bucket labels" test_metrics_histogram_float_bounds;
          quick "help line escaping" test_metrics_help_escaping;
          quick "json and fold" test_metrics_json_and_fold;
        ] );
      ( "profile",
        [
          quick "accounting" test_profile_accounting;
          quick "disabled passthrough" test_profile_disabled_is_passthrough;
          quick "feeds gcstats when enabled" test_profile_time_feeds_gcstats;
        ] );
      ( "gcstats",
        [
          quick "record and categories" test_gcstats_record_and_categories;
          quick "publish idempotent" test_gcstats_publish_idempotent;
          quick "bytes per iteration" test_gcstats_bytes_per_iteration;
        ] );
      ( "shard",
        [
          qcheck prop_shard_chunks_partition;
          quick "run covers and is reusable" test_shard_run_covers;
          quick "chunk timings" test_shard_run_timings;
          quick "exceptions propagate" test_shard_exception_propagates;
          quick "stop is idempotent" test_shard_stop_idempotent;
        ] );
    ]
