(* Tests for the bench regression gate: the hand-rolled JSON reader and
   the report diff/verdict model behind tools/benchdiff. *)

module Json = Nf_benchdiff_lib.Json
module Diff = Nf_benchdiff_lib.Diff

let quick name f = Alcotest.test_case name `Quick f

let parse_ok what s =
  match Json.parse s with
  | Ok v -> v
  | Error msg -> Alcotest.failf "%s: unexpected parse error: %s" what msg

let parse_err what s =
  match Json.parse s with
  | Ok _ -> Alcotest.failf "%s: expected a parse error" what
  | Error msg -> msg

(* ------------------------------------------------------------------ *)
(* JSON reader *)

let test_json_scalars () =
  Alcotest.(check bool) "null" true (parse_ok "null" " null " = Json.Null);
  Alcotest.(check bool) "true" true (parse_ok "true" "true" = Json.Bool true);
  (match parse_ok "num" "-12.5e2" with
  | Json.Num v -> Alcotest.(check (float 0.)) "number value" (-1250.) v
  | _ -> Alcotest.fail "expected Num");
  match parse_ok "str" {|"a\"b\\c\ndA"|} with
  | Json.Str s -> Alcotest.(check string) "escapes" "a\"b\\c\nd\065" s
  | _ -> Alcotest.fail "expected Str"

let test_json_nested () =
  let doc =
    parse_ok "nested"
      {|{"rev": "abc", "quick": false, "kernels": {"a": 1, "b": 2.5, "skip": "x"},
         "experiments": [{"name": "e1", "seconds": 0.125}]}|}
  in
  Alcotest.(check (option string)) "rev"
    (Some "abc")
    (Option.bind (Json.member "rev" doc) Json.to_str);
  (match Json.member "kernels" doc with
  | Some kernels ->
      Alcotest.(check (list (pair string (float 0.))))
        "num_members skips non-numeric"
        [ ("a", 1.); ("b", 2.5) ]
        (Json.num_members kernels)
  | None -> Alcotest.fail "no kernels");
  match
    Option.bind (Json.member "experiments" doc) Json.to_list
  with
  | Some [ e1 ] ->
      Alcotest.(check (option (float 0.)))
        "nested seconds" (Some 0.125)
        (Option.bind (Json.member "seconds" e1) Json.to_num)
  | _ -> Alcotest.fail "expected one experiment"

let test_json_errors () =
  let contains what needle msg =
    let n = String.length needle and h = String.length msg in
    let rec go i =
      i + n <= h && (String.sub msg i n = needle || go (i + 1))
    in
    Alcotest.(check bool)
      (Printf.sprintf "%s mentions %S (got %S)" what needle msg)
      true (go 0)
  in
  contains "trailing garbage" "trailing garbage" (parse_err "t" "{} {}");
  contains "bad literal" "expected null" (parse_err "l" "nul");
  contains "unterminated string" "unterminated" (parse_err "s" {|"abc|});
  contains "position reported" "line 2" (parse_err "p" "{\n  \"a\" 1}");
  contains "empty input" "end of input" (parse_err "e" "   ")

(* ------------------------------------------------------------------ *)
(* Diff verdicts *)

let write_report ~rev kernels experiments =
  let path = Filename.temp_file ("bench_" ^ rev) ".json" in
  let oc = open_out path in
  let field (n, v) = Printf.sprintf "\"%s\": %.17g" n v in
  let exp (n, s) =
    Printf.sprintf "{\"name\": \"%s\", \"seconds\": %.17g, \"attempts\": 1}" n s
  in
  Printf.fprintf oc
    {|{"rev": "%s", "quick": false, "jobs_parallel": 4, "total_seconds": 1.5,
       "kernels": {%s}, "experiments": [%s]}|}
    rev
    (String.concat ", " (List.map field kernels))
    (String.concat ", " (List.map exp experiments));
  close_out oc;
  path

let load_ok path =
  match Diff.load path with
  | Ok r -> r
  | Error msg -> Alcotest.failf "load %s: %s" path msg

let find rows section name =
  match
    List.find_opt
      (fun r -> r.Diff.section = section && r.Diff.name = name)
      rows
  with
  | Some r -> r
  | None -> Alcotest.failf "missing row %s" name

let check_verdict what expected (r : Diff.row) =
  Alcotest.(check string) what
    (match expected with
    | Diff.Regression -> "regression"
    | Diff.Improvement -> "improvement"
    | Diff.Stable -> "stable"
    | Diff.Added -> "added"
    | Diff.Removed -> "removed")
    (match r.Diff.verdict with
    | Diff.Regression -> "regression"
    | Diff.Improvement -> "improvement"
    | Diff.Stable -> "stable"
    | Diff.Added -> "added"
    | Diff.Removed -> "removed")

let test_diff_verdicts () =
  let old_path =
    write_report ~rev:"aaaa"
      [ ("k_drop", 1000.); ("k_ok", 1000.); ("k_up", 1000.); ("k_gone", 50.) ]
      [ ("e_slow", 10.); ("e_ok", 10.) ]
  in
  let new_path =
    write_report ~rev:"bbbb"
      [ ("k_drop", 800.); ("k_ok", 950.); ("k_up", 1300.); ("k_new", 7.) ]
      [ ("e_slow", 14.); ("e_ok", 10.5) ]
  in
  let old_report = load_ok old_path in
  let new_report = load_ok new_path in
  Alcotest.(check string) "rev parsed" "aaaa" old_report.Diff.rev;
  Alcotest.(check int) "jobs_parallel parsed" 4 old_report.Diff.jobs_parallel;
  let cfg = Diff.default_config in
  let rows = Diff.diff cfg ~old_report ~new_report in
  check_verdict "-20% kernel regresses" Diff.Regression
    (find rows Diff.Kernel "k_drop");
  check_verdict "-5% kernel within threshold" Diff.Stable
    (find rows Diff.Kernel "k_ok");
  check_verdict "+30% kernel improves" Diff.Improvement
    (find rows Diff.Kernel "k_up");
  check_verdict "missing kernel flagged" Diff.Removed
    (find rows Diff.Kernel "k_gone");
  check_verdict "new kernel is an addition" Diff.Added
    (find rows Diff.Kernel "k_new");
  Alcotest.(check bool) "removed kernel gates" true
    (find rows Diff.Kernel "k_gone").Diff.gated;
  Alcotest.(check bool) "added kernel does not gate" false
    (find rows Diff.Kernel "k_new").Diff.gated;
  check_verdict "+40% experiment seconds regress" Diff.Regression
    (find rows Diff.Experiment "e_slow");
  check_verdict "+5% experiment stable" Diff.Stable
    (find rows Diff.Experiment "e_ok");
  Alcotest.(check bool) "experiment time not gated by default" false
    (find rows Diff.Experiment "e_slow").Diff.gated;
  Alcotest.(check bool) "gated regressions present" true
    (Diff.has_regressions rows);
  (* With time gating on, the slow experiment also gates. *)
  let gated_rows =
    Diff.diff { cfg with Diff.gate_time = true } ~old_report ~new_report
  in
  Alcotest.(check bool) "gate-time gates experiments" true
    (find gated_rows Diff.Experiment "e_slow").Diff.gated;
  (* Self-diff is clean. *)
  let self = Diff.diff cfg ~old_report ~new_report:old_report in
  Alcotest.(check bool) "self-diff has no regressions" false
    (Diff.has_regressions self);
  Sys.remove old_path;
  Sys.remove new_path

let test_diff_rendering () =
  let old_path = write_report ~rev:"aaaa" [ ("k", 1000.) ] [ ("e", 1.) ] in
  let new_path = write_report ~rev:"bbbb" [ ("k", 500.) ] [ ("e", 1.) ] in
  let old_report = load_ok old_path in
  let new_report = load_ok new_path in
  let cfg = Diff.default_config in
  let rows = Diff.diff cfg ~old_report ~new_report in
  let md = Diff.to_markdown cfg ~old_report ~new_report rows in
  let contains needle haystack =
    let n = String.length needle and h = String.length haystack in
    let rec go i =
      i + n <= h && (String.sub haystack i n = needle || go (i + 1))
    in
    go 0
  in
  Alcotest.(check bool) "markdown flags the regression" true
    (contains "**REGRESSION**" md);
  Alcotest.(check bool) "markdown verdict is FAIL" true
    (contains "**Verdict: FAIL**" md);
  (* The JSON rendering must parse with our own reader and carry the
     regression count. *)
  let json = Diff.to_json cfg ~old_report ~new_report rows in
  (match Json.parse json with
  | Error msg -> Alcotest.failf "to_json output does not parse: %s" msg
  | Ok doc ->
      Alcotest.(check (option (float 0.)))
        "regression count" (Some 1.)
        (Option.bind (Json.member "regressions" doc) Json.to_num));
  Sys.remove old_path;
  Sys.remove new_path

let () =
  Alcotest.run "nf_benchdiff"
    [
      ( "json",
        [
          quick "scalars and escapes" test_json_scalars;
          quick "nested documents" test_json_nested;
          quick "errors carry positions" test_json_errors;
        ] );
      ( "diff",
        [
          quick "verdicts and gating" test_diff_verdicts;
          quick "markdown and json rendering" test_diff_rendering;
        ] );
    ]
