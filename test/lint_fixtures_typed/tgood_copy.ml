(* deprecated-copy good cases: the _into variants write into a
   caller-owned buffer and are always fine. Zero findings expected. *)

let loads (p : Nf_num.Problem.t) ~rates out =
  Nf_num.Problem.link_loads_into p ~rates out

let rates (p : Nf_num.Problem.t) ~rates out =
  Nf_num.Problem.group_rates_into p ~rates out
