(* domain-safety waivers. The first is justified and suppresses its
   finding; the second names the rule but gives no justification, which
   is itself a (non-suppressible) finding. *)

let cell = ref 0

let spawn_waived () =
  Stdlib.Domain.spawn (fun () ->
      (cell := 1)
      [@nf.allow "domain-safety -- single writer, domain joined before read"])

let cell2 = ref 0

let spawn_unjustified () =
  Stdlib.Domain.spawn (fun () -> (cell2 := 2) [@nf.allow "domain-safety"])
