(* domain-safety good cases: every shape the rule must accept.
   - closure-local ref (bound inside the task)
   - captured output buffer written at a chunk-local index
   - Atomic as the sanctioned cross-domain cell
   - mutex-guarded write via Mutex.protect *)

let out = Array.make 16 0.0

let run_shard (pool : Nf_util.Shard.t) =
  Nf_util.Shard.run pool ~n:16 (fun lo hi ->
      let acc = ref 0.0 in
      for i = lo to hi - 1 do
        acc := !acc +. 1.0;
        Array.unsafe_set out i !acc
      done)

let total = Atomic.make 0

let spawn_atomic () = Stdlib.Domain.spawn (fun () -> Atomic.set total 1)

let m = Mutex.create ()

let guarded = ref 0

let spawn_guarded () =
  Stdlib.Domain.spawn (fun () -> Mutex.protect m (fun () -> guarded := 1))
