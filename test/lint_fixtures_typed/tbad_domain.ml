(* domain-safety bad cases: captured mutable state written inside
   parallel closures. Expected findings, in order:
   - captured ref incremented in a Shard.run task
   - captured Hashtbl mutated in a Shard.run task
   - captured array written at a constant index in a Shard.run task
   - captured ref assigned in a Domain.spawn closure
   - mutable field of a captured record written in a Domain.spawn
     closure *)

let counter = ref 0

let tbl : (int, int) Hashtbl.t = Hashtbl.create 8

let out = Array.make 4 0.0

let run_shard (pool : Nf_util.Shard.t) =
  Nf_util.Shard.run pool ~n:4 (fun lo hi ->
      for i = lo to hi - 1 do
        counter := !counter + i;
        Hashtbl.replace tbl i i;
        Array.unsafe_set out 0 1.0
      done)

let spawn_ref () = Stdlib.Domain.spawn (fun () -> counter := 1)

type cell = { mutable v : float }

let shared = { v = 0.0 }

let spawn_field () = Stdlib.Domain.spawn (fun () -> shared.v <- 1.0)
