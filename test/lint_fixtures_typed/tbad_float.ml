(* Typed float-compare bad cases. The types are what convict here, not
   the syntax: every operand below is float-carrying. Expected
   findings: the [=] in [eq], the bare [compare] in [lst] (instantiated
   at float), the [min] in [fmin]. *)

let eq (a : float) (b : float) = a = b

let lst (xs : float list) = List.sort compare xs

let fmin (a : float) (b : float) = min a b
