(* Typed hot-alloc bad cases. Expected findings: tuple in [pair],
   Array.make in [fresh], boxed constructor in [boxed], partial
   application (omitted labelled argument) in [staged]. *)

let[@nf.hot] pair a b = (a, b)

let[@nf.hot] fresh n = Array.make n 0.0

let[@nf.hot] boxed x = Some x

let scaled ~(k : float) (x : float) = k *. x

let[@nf.hot] staged (x : float) = scaled x
