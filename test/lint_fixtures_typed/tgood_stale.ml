(* stale-generation good cases: the sanctioned refresh idioms.
   - Problem.commit between the mutation and the use
   - Xwi_core.resize consuming the stale state (and its result used
     after)
   - uses entirely before the mutation *)

open Nf_num

let spec = Problem.single_path (Utility.proportional_fair ()) [| 0 |]

let good_commit (p : Problem.t) (st : Xwi_core.state) params =
  let _gid = Problem.add_group p spec in
  Problem.commit p;
  Xwi_core.step p params st

let good_resize (p : Problem.t) (st : Xwi_core.state) params =
  let _gid = Problem.add_group p spec in
  let st = Xwi_core.resize p st in
  Xwi_core.step p params st

let good_use_before (p : Problem.t) (st : Xwi_core.state) params =
  Xwi_core.step p params st;
  let _gid = Problem.add_group p spec in
  Problem.commit p
