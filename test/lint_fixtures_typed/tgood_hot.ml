(* Typed hot-alloc good cases: in-place float kernels in the repo's
   house style (loop-invariant ref accumulator, preallocated output,
   full applications everywhere). Zero findings expected. *)

let[@nf.hot] sum (a : float array) =
  let acc = ref 0.0 in
  for i = 0 to Array.length a - 1 do
    acc := !acc +. Array.unsafe_get a i
  done;
  !acc

let[@nf.hot] scale (a : float array) (c : float) =
  for i = 0 to Array.length a - 1 do
    Array.unsafe_set a i (c *. Array.unsafe_get a i)
  done
