(* deprecated-copy bad cases: both copying accessors, called outside
   Nf_num.Reference. Two findings expected. *)

let loads (p : Nf_num.Problem.t) ~rates = Nf_num.Problem.link_loads p ~rates

let rates (p : Nf_num.Problem.t) ~rates = Nf_num.Problem.group_rates p ~rates
