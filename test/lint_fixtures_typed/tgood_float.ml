(* Typed float-compare good cases — all of these were false positives
   (or required annotations) under the retired syntactic rule:
   - [=] on two ints (neither operand syntactically obvious)
   - bare [compare] passed to List.sort at an int instantiation
   - monomorphic Float comparisons
   Zero findings expected. *)

let eq (a : int) (b : int) = a = b

let lst (xs : int list) = List.sort compare xs

let both (a : int option) (b : int option) = a = b

let feq (a : float) (b : float) = Float.equal a b

let fmin (a : float) (b : float) = Float.min a b
