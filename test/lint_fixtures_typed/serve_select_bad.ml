(* serve-blocking bad cases: blocking calls inside what the config
   marks as select-loop code. Expected findings: the Unix.sleepf and
   the Sys.command. *)

let tick () = Unix.sleepf 0.05

let shell () = ignore (Sys.command "true")
