(* serve-blocking good case: waiting in Unix.select with a timeout is
   the select loop's job, not a blocking call. Zero findings. *)

let tick socks =
  match Unix.select socks [] [] 0.05 with
  | ready, _, _ -> List.length ready
  | exception Unix.Unix_error (Unix.EINTR, _, _) -> 0
