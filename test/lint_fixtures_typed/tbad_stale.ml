(* stale-generation bad cases: a solver state / incidence obtained
   before a Problem topology mutation, used after it with no commit or
   resize in between. Expected findings: one on [st] in [bad_state],
   one on [inc] in [bad_incidence]. *)

open Nf_num

let spec = Problem.single_path (Utility.proportional_fair ()) [| 0 |]

let bad_state (p : Problem.t) (st : Xwi_core.state) params =
  let _gid = Problem.add_group p spec in
  Xwi_core.step p params st

let bad_incidence (p : Problem.t) (inc : Incidence.t) ~prices ~out =
  let _gid = Problem.add_group p spec in
  Incidence.path_prices_into inc ~prices ~out
