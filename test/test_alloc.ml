(* Runtime enforcement of the hot-path zero-allocation invariant: the
   [@nf.hot] kernels must not allocate in steady state. nf_lint checks
   the same invariant syntactically; this audit measures it. The audit
   itself knows about the dev profile's -opaque boundary boxing (see
   Alloc_audit), so the suite passes under both build profiles. *)

module Alloc_audit = Nf_experiments.Alloc_audit

let test_audit_within_limits () =
  let results = Alloc_audit.run ~iters:2_000 () in
  Alcotest.(check int) "four kernels audited" 4 (List.length results);
  List.iter
    (fun r ->
      Alcotest.(check bool)
        (Printf.sprintf "%s within limit (%.3f <= %.1f B/iter)"
           r.Alloc_audit.kernel r.Alloc_audit.bytes_per_iter
           r.Alloc_audit.limit)
        true
        (r.Alloc_audit.bytes_per_iter <= r.Alloc_audit.limit))
    results;
  Alcotest.(check bool) "ok agrees with the per-row limits" true
    (Alloc_audit.ok results);
  (* The solver kernels keep their floats inside one compilation unit, so
     they owe 0 bytes under *every* build profile — no boundary waiver. *)
  List.iter
    (fun r ->
      if r.Alloc_audit.kernel = "xwi_step"
         || r.Alloc_audit.kernel = "maxmin_solve_sparse"
      then
        Alcotest.(check bool)
          (Printf.sprintf "%s holds the strict budget" r.Alloc_audit.kernel)
          true
          (r.Alloc_audit.bytes_per_iter <= Alloc_audit.budget))
    results

let () =
  Alcotest.run "nf_alloc"
    [
      ( "audit",
        [
          Alcotest.test_case "hot kernels steady-state clean" `Quick
            test_audit_within_limits;
        ] );
    ]
