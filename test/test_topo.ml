(* Tests for nf_topo: graph construction, routing, canonical builders. *)

module Topology = Nf_topo.Topology
module Routing = Nf_topo.Routing
module Builders = Nf_topo.Builders
module Units = Nf_util.Units
module Rng = Nf_util.Rng

let quick name f = Alcotest.test_case name `Quick f

let qcheck = QCheck_alcotest.to_alcotest

(* ------------------------------------------------------------------ *)
(* Builder / Topology *)

let line_topology () =
  (* h0 -> sw -> h1, duplex *)
  let b = Topology.Builder.create () in
  let h0 = Topology.Builder.add_host b ~label:"h0" () in
  let sw = Topology.Builder.add_switch b ~label:"sw" () in
  let h1 = Topology.Builder.add_host b ~label:"h1" () in
  let l0, l0' = Topology.Builder.add_duplex b h0 sw ~capacity:(Units.gbps 10.) ~delay:1e-6 in
  let l1, l1' = Topology.Builder.add_duplex b sw h1 ~capacity:(Units.gbps 10.) ~delay:1e-6 in
  (Topology.Builder.finish b, h0, sw, h1, l0, l0', l1, l1')

let test_builder_basic () =
  let topo, h0, sw, h1, l0, _, l1, _ = line_topology () in
  Alcotest.(check int) "nodes" 3 (Topology.n_nodes topo);
  Alcotest.(check int) "links" 4 (Topology.n_links topo);
  Alcotest.(check int) "hosts" 2 (Array.length (Topology.hosts topo));
  Alcotest.(check int) "switches" 1 (Array.length (Topology.switches topo));
  Alcotest.(check bool) "kind" true ((Topology.node topo sw).Topology.kind = Topology.Switch);
  Alcotest.(check (option int)) "find_link" (Some l0)
    (Topology.find_link topo ~src:h0 ~dst:sw);
  Alcotest.(check bool) "path valid" true
    (Topology.path_is_valid topo ~src:h0 ~dst:h1 [ l0; l1 ]);
  Alcotest.(check bool) "path invalid" false
    (Topology.path_is_valid topo ~src:h0 ~dst:h1 [ l1; l0 ]);
  Alcotest.(check (float 1e-12)) "path delay" 2e-6
    (Topology.path_delay topo [ l0; l1 ]);
  Alcotest.(check (float 1.)) "path min capacity" (Units.gbps 10.)
    (Topology.path_min_capacity topo [ l0; l1 ])

let test_builder_validation () =
  let b = Topology.Builder.create () in
  let h = Topology.Builder.add_host b () in
  Alcotest.check_raises "self loop"
    (Invalid_argument "Topology.Builder.add_link: self loop") (fun () ->
      ignore (Topology.Builder.add_link b ~src:h ~dst:h ~capacity:1. ~delay:0.));
  Alcotest.check_raises "unknown node"
    (Invalid_argument "Topology.Builder.add_link: unknown node") (fun () ->
      ignore (Topology.Builder.add_link b ~src:h ~dst:99 ~capacity:1. ~delay:0.));
  Alcotest.check_raises "bad capacity"
    (Invalid_argument "Topology.Builder.add_link: capacity must be positive")
    (fun () ->
      let h2 = Topology.Builder.add_host b () in
      ignore (Topology.Builder.add_link b ~src:h ~dst:h2 ~capacity:0. ~delay:0.))

(* ------------------------------------------------------------------ *)
(* Routing *)

let test_shortest_path_line () =
  let topo, h0, _, h1, l0, _, l1, _ = line_topology () in
  (match Routing.shortest_path topo ~src:h0 ~dst:h1 with
  | Some p -> Alcotest.(check (list int)) "path" [ l0; l1 ] p
  | None -> Alcotest.fail "expected a path");
  Alcotest.(check (option int)) "hops" (Some 2) (Routing.hop_count topo ~src:h0 ~dst:h1);
  Alcotest.(check (option (list int))) "self path" (Some [])
    (Routing.shortest_path topo ~src:h0 ~dst:h0)

let test_unreachable () =
  let b = Topology.Builder.create () in
  let a = Topology.Builder.add_host b () in
  let c = Topology.Builder.add_host b () in
  ignore (Topology.Builder.add_link b ~src:a ~dst:c ~capacity:1. ~delay:0.);
  let topo = Topology.Builder.finish b in
  Alcotest.(check (option (list int))) "one way only" None
    (Routing.shortest_path topo ~src:c ~dst:a);
  Alcotest.(check (list (list int))) "no paths" []
    (Routing.all_shortest_paths topo ~src:c ~dst:a)

let test_leaf_spine_paths () =
  let ls = Builders.leaf_spine ~n_leaves:4 ~n_spines:3 ~servers_per_leaf:2 () in
  let topo = ls.Builders.topo in
  Alcotest.(check int) "servers" 8 (Array.length ls.Builders.servers);
  (* Same-leaf pair: unique 2-hop path. *)
  let s0 = ls.Builders.servers.(0) and s1 = ls.Builders.servers.(1) in
  Alcotest.(check int) "same leaf: 1 path" 1
    (List.length (Routing.all_shortest_paths topo ~src:s0 ~dst:s1));
  (* Cross-leaf pair: one path per spine. *)
  let s2 = ls.Builders.servers.(2) in
  let paths = Routing.all_shortest_paths topo ~src:s0 ~dst:s2 in
  Alcotest.(check int) "cross leaf: n_spines paths" 3 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check int) "4 hops" 4 (List.length p);
      Alcotest.(check bool) "valid" true
        (Topology.path_is_valid topo ~src:s0 ~dst:s2 p))
    paths

let test_ecmp_selection () =
  let ls = Builders.leaf_spine ~n_leaves:2 ~n_spines:4 ~servers_per_leaf:1 () in
  let topo = ls.Builders.topo in
  let s0 = ls.Builders.servers.(0) and s1 = ls.Builders.servers.(1) in
  let seen = Hashtbl.create 4 in
  for hash = 0 to 7 do
    let p = Routing.ecmp_path topo ~src:s0 ~dst:s1 ~hash in
    Hashtbl.replace seen p ()
  done;
  Alcotest.(check int) "hashes cover all 4 paths" 4 (Hashtbl.length seen);
  (* Negative hashes are fine too. *)
  let p = Routing.ecmp_path topo ~src:s0 ~dst:s1 ~hash:(-3) in
  Alcotest.(check bool) "negative hash valid" true
    (Topology.path_is_valid topo ~src:s0 ~dst:s1 p)

let test_paper_leaf_spine () =
  let ls = Builders.paper_leaf_spine () in
  Alcotest.(check int) "128 servers" 128 (Array.length ls.Builders.servers);
  Alcotest.(check int) "8 leaves" 8 (Array.length ls.Builders.leaves);
  Alcotest.(check int) "4 spines" 4 (Array.length ls.Builders.spines);
  (* Full bisection: leaf uplink capacity = leaf downlink capacity. *)
  let topo = ls.Builders.topo in
  let leaf = ls.Builders.leaves.(0) in
  let up, down =
    List.fold_left
      (fun (up, down) lid ->
        let l = Topology.link topo lid in
        match (Topology.node topo l.Topology.dst).Topology.kind with
        | Topology.Switch -> (up +. l.Topology.capacity, down)
        | Topology.Host -> (up, down +. l.Topology.capacity))
      (0., 0.)
      (Topology.out_links topo leaf)
  in
  Alcotest.(check (float 1.)) "full bisection" up down

let test_single_bottleneck () =
  let sb = Builders.single_bottleneck ~n_senders:3 () in
  let topo = sb.Builders.sb_topo in
  Array.iter
    (fun s ->
      match Routing.shortest_path topo ~src:s ~dst:sb.Builders.receiver with
      | Some p ->
        Alcotest.(check bool) "sender path crosses bottleneck" true
          (List.mem sb.Builders.bottleneck p)
      | None -> Alcotest.fail "no path")
    sb.Builders.senders

let test_parking_lot () =
  let pl = Builders.parking_lot ~n_links:3 () in
  let topo = pl.Builders.pl_topo in
  let h0 = pl.Builders.pl_hosts.(0) and h3 = pl.Builders.pl_hosts.(3) in
  match Routing.shortest_path topo ~src:h0 ~dst:h3 with
  | Some p ->
    (* access + 3 chain links + access = 5 hops *)
    Alcotest.(check int) "long flow hops" 5 (List.length p);
    Array.iter
      (fun lid -> Alcotest.(check bool) "chain link on path" true (List.mem lid p))
      pl.Builders.pl_links
  | None -> Alcotest.fail "no path"

let test_three_link_pooling () =
  let tl = Builders.three_link_pooling ~middle_capacity:(Units.gbps 17.) () in
  let topo = tl.Builders.tl_topo in
  Alcotest.(check (float 1.)) "middle capacity" (Units.gbps 17.)
    (Topology.link topo tl.Builders.middle).Topology.capacity;
  List.iter
    (fun p ->
      Alcotest.(check bool) "flow1 path valid" true
        (Topology.path_is_valid topo ~src:tl.Builders.src1 ~dst:tl.Builders.sink p))
    tl.Builders.tl_paths1;
  List.iter
    (fun p ->
      Alcotest.(check bool) "flow2 path valid" true
        (Topology.path_is_valid topo ~src:tl.Builders.src2 ~dst:tl.Builders.sink p))
    tl.Builders.tl_paths2

let prop_random_leaf_spine_routes =
  QCheck.Test.make ~name:"shortest paths are valid on random leaf-spines" ~count:50
    QCheck.(triple (1 -- 4) (1 -- 4) (1 -- 4))
    (fun (n_leaves, n_spines, per_leaf) ->
      let ls = Builders.leaf_spine ~n_leaves ~n_spines ~servers_per_leaf:per_leaf () in
      let topo = ls.Builders.topo in
      let servers = ls.Builders.servers in
      let rng = Rng.create ~seed:(n_leaves + (7 * n_spines) + (31 * per_leaf)) in
      let ok = ref true in
      for _ = 1 to 10 do
        let s = Rng.pick rng servers and d = Rng.pick rng servers in
        if s <> d then begin
          match Routing.shortest_path topo ~src:s ~dst:d with
          | None -> ok := false
          | Some p -> if not (Topology.path_is_valid topo ~src:s ~dst:d p) then ok := false
        end
      done;
      !ok)

let test_fat_tree () =
  let ft = Builders.fat_tree ~k:4 () in
  let topo = ft.Builders.ft_topo in
  Alcotest.(check int) "k^3/4 servers" 16 (Array.length ft.Builders.ft_servers);
  Alcotest.(check int) "k*k/2 edges" 8 (Array.length ft.Builders.ft_edges);
  Alcotest.(check int) "k*k/2 aggs" 8 (Array.length ft.Builders.ft_aggs);
  Alcotest.(check int) "(k/2)^2 cores" 4 (Array.length ft.Builders.ft_cores);
  (* Same-pod different-edge pair: 4 hops, k/2 ECMP paths. *)
  let s0 = ft.Builders.ft_servers.(0) and s2 = ft.Builders.ft_servers.(2) in
  Alcotest.(check (option int)) "intra-pod hops" (Some 4)
    (Routing.hop_count topo ~src:s0 ~dst:s2);
  Alcotest.(check int) "intra-pod ECMP" 2
    (List.length (Routing.all_shortest_paths topo ~src:s0 ~dst:s2));
  (* Cross-pod pair: 6 hops, (k/2)^2 ECMP paths. *)
  let s8 = ft.Builders.ft_servers.(8) in
  Alcotest.(check (option int)) "cross-pod hops" (Some 6)
    (Routing.hop_count topo ~src:s0 ~dst:s8);
  let paths = Routing.all_shortest_paths topo ~src:s0 ~dst:s8 in
  Alcotest.(check int) "cross-pod ECMP" 4 (List.length paths);
  List.iter
    (fun p ->
      Alcotest.(check bool) "valid" true
        (Topology.path_is_valid topo ~src:s0 ~dst:s8 p))
    paths;
  Alcotest.check_raises "odd k rejected"
    (Invalid_argument "Builders.fat_tree: k must be even and >= 2") (fun () ->
      ignore (Builders.fat_tree ~k:3 ()))

let test_leaf_spine_large () =
  let ls = Builders.leaf_spine_large () in
  Alcotest.(check int) "1024 servers" 1024 (Array.length ls.Builders.servers);
  Alcotest.(check int) "32 leaves" 32 (Array.length ls.Builders.leaves);
  Alcotest.(check int) "16 spines" 16 (Array.length ls.Builders.spines);
  (* 1024 server links + 32*16 leaf-spine links, both duplex. *)
  Alcotest.(check int) "link count" 3072 (Topology.n_links ls.Builders.topo);
  let s0 = ls.Builders.servers.(0) and s40 = ls.Builders.servers.(40) in
  Alcotest.(check (option int)) "cross-leaf hops" (Some 4)
    (Routing.hop_count ls.Builders.topo ~src:s0 ~dst:s40);
  let r = Routing.router ls.Builders.topo in
  Alcotest.(check int) "one ECMP path per spine" 16
    (Routing.ecmp_path_count r ~src:s0 ~dst:s40)

let test_fat_tree_presets () =
  let ft16 = Builders.fat_tree_k16 () in
  Alcotest.(check int) "k16 servers" 1024 (Array.length ft16.Builders.ft_servers);
  Alcotest.(check int) "k16 edges" 128 (Array.length ft16.Builders.ft_edges);
  Alcotest.(check int) "k16 aggs" 128 (Array.length ft16.Builders.ft_aggs);
  Alcotest.(check int) "k16 cores" 64 (Array.length ft16.Builders.ft_cores);
  (* server + edge-agg + agg-core layers each contribute k^3/4 duplex
     links: 3 * 1024 * 2 directed links. *)
  Alcotest.(check int) "k16 link count" 6144 (Topology.n_links ft16.Builders.ft_topo);
  let topo = ft16.Builders.ft_topo in
  let srv = ft16.Builders.ft_servers in
  Alcotest.(check (option int)) "k16 same-edge hops" (Some 2)
    (Routing.hop_count topo ~src:srv.(0) ~dst:srv.(1));
  Alcotest.(check (option int)) "k16 intra-pod hops" (Some 4)
    (Routing.hop_count topo ~src:srv.(0) ~dst:srv.(8));
  (* Pod 0 holds (k/2)^2 = 64 servers: server 64 is in pod 1. *)
  Alcotest.(check (option int)) "k16 cross-pod hops" (Some 6)
    (Routing.hop_count topo ~src:srv.(0) ~dst:srv.(64));
  let r = Routing.router topo in
  Alcotest.(check int) "k16 intra-pod ECMP" 8
    (Routing.ecmp_path_count r ~src:srv.(0) ~dst:srv.(8));
  Alcotest.(check int) "k16 cross-pod ECMP" 64
    (Routing.ecmp_path_count r ~src:srv.(0) ~dst:srv.(64));
  let ft32 = Builders.fat_tree_k32 () in
  Alcotest.(check int) "k32 servers" 8192 (Array.length ft32.Builders.ft_servers);
  Alcotest.(check int) "k32 edges" 512 (Array.length ft32.Builders.ft_edges);
  Alcotest.(check int) "k32 aggs" 512 (Array.length ft32.Builders.ft_aggs);
  Alcotest.(check int) "k32 cores" 256 (Array.length ft32.Builders.ft_cores);
  Alcotest.(check int) "k32 link count" 49152
    (Topology.n_links ft32.Builders.ft_topo);
  Alcotest.(check (option int)) "k32 cross-pod hops" (Some 6)
    (Routing.hop_count ft32.Builders.ft_topo
       ~src:ft32.Builders.ft_servers.(0)
       ~dst:ft32.Builders.ft_servers.(256))

let prop_router_matches_ecmp_path =
  (* The memoized router must reproduce the enumerating ecmp_path exactly:
     same path for every hash, same equal-cost path count. *)
  QCheck.Test.make ~name:"router matches enumerating ECMP" ~count:60
    QCheck.(pair small_int bool)
    (fun (seed, use_fat_tree) ->
      let topo, hosts =
        if use_fat_tree then
          let ft = Builders.fat_tree ~k:4 () in
          (ft.Builders.ft_topo, ft.Builders.ft_servers)
        else
          let ls = Builders.paper_leaf_spine () in
          (ls.Builders.topo, ls.Builders.servers)
      in
      let r = Routing.router topo in
      let rng = Rng.create ~seed:(seed + 71) in
      let ok = ref true in
      for i = 1 to 12 do
        let s = Rng.pick rng hosts and d = Rng.pick rng hosts in
        if s <> d then begin
          let hash = (i * 2654435761) + seed in
          let slow = Routing.ecmp_path topo ~src:s ~dst:d ~hash in
          let fast = Routing.ecmp_path_fast r ~src:s ~dst:d ~hash in
          if slow <> fast then ok := false;
          if
            Routing.ecmp_path_count r ~src:s ~dst:d
            <> List.length (Routing.all_shortest_paths topo ~src:s ~dst:d)
          then ok := false
        end
      done;
      !ok)

let test_router_unreachable () =
  (* Two disconnected hosts: fast router must mirror ecmp_path's error. *)
  let b = Topology.Builder.create () in
  let h0 = Topology.Builder.add_host b ~label:"h0" () in
  let h1 = Topology.Builder.add_host b ~label:"h1" () in
  let topo = Topology.Builder.finish b in
  let r = Routing.router topo in
  Alcotest.(check int) "no path" 0 (Routing.ecmp_path_count r ~src:h0 ~dst:h1);
  Alcotest.check_raises "fast raises like slow"
    (Invalid_argument "Routing.ecmp_path_fast: destination unreachable")
    (fun () -> ignore (Routing.ecmp_path_fast r ~src:h0 ~dst:h1 ~hash:3))

let prop_hop_count_matches_path_length =
  QCheck.Test.make ~name:"hop_count equals shortest path length" ~count:50
    QCheck.(triple (2 -- 4) (1 -- 4) (1 -- 3))
    (fun (n_leaves, n_spines, per_leaf) ->
      let ls = Builders.leaf_spine ~n_leaves ~n_spines ~servers_per_leaf:per_leaf () in
      let topo = ls.Builders.topo in
      let servers = ls.Builders.servers in
      let rng = Rng.create ~seed:(n_leaves + (13 * n_spines)) in
      let ok = ref true in
      for _ = 1 to 8 do
        let s = Rng.pick rng servers and d = Rng.pick rng servers in
        if s <> d then begin
          match (Routing.hop_count topo ~src:s ~dst:d, Routing.shortest_path topo ~src:s ~dst:d) with
          | Some h, Some p -> if h <> List.length p then ok := false
          | _, _ -> ok := false
        end
      done;
      !ok)

let () =
  Alcotest.run "nf_topo"
    [
      ( "topology",
        [
          quick "builder basics" test_builder_basic;
          quick "builder validation" test_builder_validation;
        ] );
      ( "routing",
        [
          quick "line shortest path" test_shortest_path_line;
          quick "unreachable" test_unreachable;
          quick "leaf-spine path enumeration" test_leaf_spine_paths;
          quick "ecmp selection" test_ecmp_selection;
          qcheck prop_random_leaf_spine_routes;
          qcheck prop_hop_count_matches_path_length;
          qcheck prop_router_matches_ecmp_path;
          quick "router unreachable" test_router_unreachable;
        ] );
      ( "builders",
        [
          quick "paper leaf-spine" test_paper_leaf_spine;
          quick "single bottleneck" test_single_bottleneck;
          quick "parking lot" test_parking_lot;
          quick "three-link pooling" test_three_link_pooling;
          quick "fat tree" test_fat_tree;
          quick "leaf-spine large" test_leaf_spine_large;
          quick "fat tree presets" test_fat_tree_presets;
        ] );
    ]
