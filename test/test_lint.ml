(* Tests for the nf_lint rules library.

   Two fixture pools drive the two stages: lint_fixtures/ holds
   parse-only sources for the syntactic rules (linted, never compiled),
   lint_fixtures_typed/ is a real compiled library whose cmt artifacts
   feed the typed rules (linking it into this binary is what guarantees
   the cmts exist by the time the tests run). *)

module Config = Nf_lint_rules.Config
module Cmts = Nf_lint_rules.Cmts
module Driver = Nf_lint_rules.Driver
module Finding = Nf_lint_rules.Finding
module Rules = Nf_lint_rules.Rules

(* dune runtest runs the binary inside test/; dune exec runs it from the
   workspace root. Accept either. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

let typed_dir =
  if Sys.file_exists "lint_fixtures_typed" then "lint_fixtures_typed"
  else Filename.concat "test" "lint_fixtures_typed"

let typed_fixture name = Filename.concat typed_dir name

(* The fixture library's cmt artifacts, built by dune alongside this
   binary (the library is a link-time dependency). *)
let typed_cmts =
  lazy
    (Cmts.index
       ~roots:
         [
           (* under dune runtest (cwd = _build/default/test) *)
           Filename.concat typed_dir ".nf_lint_fixtures_typed.objs";
           (* under dune exec from the workspace root *)
           Filename.concat
             (Filename.concat "_build/default" typed_dir)
             ".nf_lint_fixtures_typed.objs";
         ])

(* Lint one fixture with only [rule] enabled, under the strict config. *)
let lint_rule rule name =
  Driver.lint_file ~enabled:(String.equal rule) ~config:Config.strict
    (fixture name)

let lint_typed ?(config = Config.strict) rule name =
  Driver.lint_file ~enabled:(String.equal rule) ~config
    ~cmts:(Lazy.force typed_cmts) ~require_cmt:true (typed_fixture name)

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let contains haystack needle =
  let nh = String.length haystack and nn = String.length needle in
  let rec go i = i + nn <= nh && (String.sub haystack i nn = needle || go (i + 1)) in
  nn = 0 || go 0

let check_stage lint rule ~bad ~good ~expect () =
  let findings = lint rule bad in
  Alcotest.(check (list string))
    (Printf.sprintf "every finding in %s is %s" bad rule)
    (List.init expect (fun _ -> rule))
    (rules_of findings);
  List.iter
    (fun f ->
      Alcotest.(check bool) "line is positive" true (f.Finding.line > 0))
    findings;
  Alcotest.(check (list string))
    (Printf.sprintf "%s clean for %s" good rule)
    []
    (List.map Finding.to_string (lint rule good))

let check_flags = check_stage lint_rule

let check_typed = check_stage (lint_typed ?config:None)

let test_determinism =
  check_flags "determinism" ~bad:"bad_determinism.ml"
    ~good:"good_determinism.ml" ~expect:4

let test_exn_swallow =
  check_flags "exn-swallow" ~bad:"bad_exn_swallow.ml"
    ~good:"good_exn_swallow.ml" ~expect:3

let test_mli_missing () =
  let missing =
    lint_rule "mli-missing" "bad_determinism.ml" |> rules_of
  in
  Alcotest.(check (list string)) "no .mli next to fixture" [ "mli-missing" ]
    missing;
  Alcotest.(check (list string))
    "with_mli.mli satisfies the rule" []
    (rules_of (lint_rule "mli-missing" "with_mli.ml"))

(* ---------------- typed stage ---------------- *)

let test_typed_float_compare =
  check_typed "float-compare" ~bad:"tbad_float.ml" ~good:"tgood_float.ml"
    ~expect:3

let test_typed_hot_alloc =
  check_typed "hot-alloc" ~bad:"tbad_hot.ml" ~good:"tgood_hot.ml" ~expect:4

let test_domain_safety =
  check_typed "domain-safety" ~bad:"tbad_domain.ml" ~good:"tgood_domain.ml"
    ~expect:5

let test_domain_waiver () =
  (* A justified waiver is silent; a bare-name waiver is exactly one
     finding (the missing justification), and that finding is not
     itself suppressible. *)
  let findings = lint_typed "domain-safety" "tallow_domain.ml" in
  Alcotest.(check (list string))
    "only the unjustified waiver fires" [ "domain-safety" ]
    (rules_of findings);
  match findings with
  | [ f ] ->
    Alcotest.(check bool) "message points at the missing justification" true
      (contains f.Finding.msg "justification")
  | _ -> Alcotest.fail "expected exactly one finding"

let test_stale_generation =
  check_typed "stale-generation" ~bad:"tbad_stale.ml" ~good:"tgood_stale.ml"
    ~expect:2

let test_deprecated_copy =
  check_typed "deprecated-copy" ~bad:"tbad_copy.ml" ~good:"tgood_copy.ml"
    ~expect:2

let test_copy_exempt () =
  (* The same bad fixture lints clean under a config that marks it
     copy-exempt (how Nf_num.Reference keeps its copying accessors). *)
  let exempt = { Config.strict with Config.copy_exempt = (fun _ -> true) } in
  Alcotest.(check (list string))
    "copy-exempt file may call the copying accessors" []
    (rules_of (lint_typed ~config:exempt "deprecated-copy" "tbad_copy.ml"))

let test_serve_blocking =
  check_typed "serve-blocking" ~bad:"serve_select_bad.ml"
    ~good:"serve_select_good.ml" ~expect:2

let test_cmt_missing () =
  (* A file with no cmt artifact: typed stage silently skipped by
     default, a cmt-missing finding under --require-cmt. *)
  let quiet =
    Driver.lint_file
      ~enabled:(fun _ -> false)
      ~config:Config.strict
      ~cmts:(Lazy.force typed_cmts) (fixture "bad_determinism.ml")
  in
  Alcotest.(check (list string)) "silently skipped" [] (rules_of quiet);
  let strict =
    Driver.lint_file
      ~enabled:(fun _ -> false)
      ~config:Config.strict
      ~cmts:(Lazy.force typed_cmts) ~require_cmt:true
      (fixture "bad_determinism.ml")
  in
  Alcotest.(check (list string)) "cmt-missing under require_cmt"
    [ "cmt-missing" ] (rules_of strict)

(* ---------------- suppression ---------------- *)

let test_allow_suppresses () =
  (* Every rule enabled: the [@nf.allow] annotations must silence all of
     the deliberate violations in allow_ok.ml. *)
  let findings = Driver.lint_file ~config:Config.strict (fixture "allow_ok.ml") in
  Alcotest.(check (list string)) "allow_ok.ml lints clean" []
    (List.map Finding.to_string findings)

let test_allow_justification_parsing () =
  (* The extended payload grammar: rule names before --, free text
     after. *)
  let payload = "domain-safety float-compare -- writes are chunk-local" in
  let attr : Parsetree.attribute =
    {
      attr_name = Location.mknoloc "nf.allow";
      attr_payload =
        PStr
          [
            Ast_helper.Str.eval
              (Ast_helper.Exp.constant (Ast_helper.Const.string payload));
          ];
      attr_loc = Location.none;
    }
  in
  match Rules.allow_of_attr attr with
  | None -> Alcotest.fail "nf.allow attribute not recognised"
  | Some a ->
    Alcotest.(check (list string))
      "rules" [ "domain-safety"; "float-compare" ] a.Rules.rules;
    Alcotest.(check (option string))
      "justification" (Some "writes are chunk-local") a.Rules.justification

let test_wallclock_exemption () =
  (* Same source, exempt path policy: the wall-clock reads stop being
     findings but Random.self_init and Hashtbl.iter remain. *)
  let exempt =
    { Config.strict with Config.wallclock_exempt = (fun _ -> true) }
  in
  let findings =
    Driver.lint_file ~enabled:(String.equal "determinism") ~config:exempt
      (fixture "bad_determinism.ml")
  in
  Alcotest.(check int) "only non-wallclock findings remain" 2
    (List.length findings)

(* ---------------- driver ---------------- *)

let test_output_deterministic () =
  let run () =
    Driver.run ~config:Config.strict
      ~cmts:(Lazy.force typed_cmts)
      [ fixture_dir; typed_dir ]
  in
  let a = run () and b = run () in
  Alcotest.(check (list string))
    "repeat runs are byte-identical"
    (List.map Finding.to_string a)
    (List.map Finding.to_string b);
  let sorted = List.sort Finding.compare a in
  Alcotest.(check (list string))
    "findings come back sorted"
    (List.map Finding.to_string sorted)
    (List.map Finding.to_string a)

let test_collect_files_sorted () =
  let files = Driver.collect_files [ fixture_dir; typed_dir ] in
  Alcotest.(check bool) "found the fixtures" true (List.length files >= 15);
  let sorted = List.sort_uniq compare files in
  Alcotest.(check (list string)) "walk is sorted and deduplicated" sorted files;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " ends in .ml") true
        (Filename.check_suffix f ".ml"))
    files

let test_baseline_roundtrip () =
  let findings =
    Driver.lint_file ~enabled:(String.equal "determinism")
      ~config:Config.strict
      (fixture "bad_determinism.ml")
  in
  let keys = Driver.baseline_of_findings findings in
  let r = Driver.apply_baseline keys findings in
  Alcotest.(check int) "all findings baselined" (List.length findings)
    (List.length r.Driver.baselined);
  Alcotest.(check (list string)) "nothing fresh" []
    (List.map Finding.to_string r.Driver.fresh);
  Alcotest.(check (list string)) "nothing stale" [] r.Driver.stale;
  let r' = Driver.apply_baseline ("nosuch.ml [determinism] ghost" :: keys) findings in
  Alcotest.(check (list string))
    "unmatched entries reported stale"
    [ "nosuch.ml [determinism] ghost" ]
    r'.Driver.stale;
  let r'' = Driver.apply_baseline [] findings in
  Alcotest.(check int) "empty baseline suppresses nothing"
    (List.length findings)
    (List.length r''.Driver.fresh)

let test_baseline_preserves_comments () =
  let tmp = Filename.temp_file "nf_lint_baseline" ".txt" in
  let oc = open_out tmp in
  output_string oc
    "# reviewer note: tolerated until the solver rewrite lands\n\
     old.ml [determinism] gone finding\n\
     # second note, below an entry\n";
  close_out oc;
  let findings =
    Driver.lint_file ~enabled:(String.equal "determinism")
      ~config:Config.strict
      (fixture "bad_determinism.ml")
  in
  let n = Driver.write_baseline ~path:tmp findings in
  Alcotest.(check int) "entry count" (List.length (Driver.baseline_of_findings findings)) n;
  let ic = open_in tmp in
  let rec read acc =
    match input_line ic with
    | l -> read (l :: acc)
    | exception End_of_file -> List.rev acc
  in
  let lines = read [] in
  close_in ic;
  Sys.remove tmp;
  let comments = List.filter (fun l -> String.length l > 0 && l.[0] = '#') lines in
  Alcotest.(check (list string))
    "both comment lines preserved, in order"
    [
      "# reviewer note: tolerated until the solver rewrite lands";
      "# second note, below an entry";
    ]
    comments;
  Alcotest.(check bool) "stale entry dropped" false
    (List.exists (fun l -> l = "old.ml [determinism] gone finding") lines);
  let entries = List.filter (fun l -> l <> "" && l.[0] <> '#') lines in
  Alcotest.(check (list string))
    "entries are the fresh findings, sorted"
    (Driver.baseline_of_findings findings)
    entries

let test_parse_error_is_finding () =
  let tmp = Filename.temp_file "nf_lint_fixture" ".ml" in
  let oc = open_out tmp in
  output_string oc "let = in";
  close_out oc;
  let findings = Driver.lint_file ~config:Config.strict tmp in
  Sys.remove tmp;
  Alcotest.(check (list string)) "parse failure becomes a finding"
    [ "parse-error" ] (rules_of findings)

let test_json () =
  let f =
    Finding.v ~file:"lib/a.ml" ~line:3 ~col:7 ~rule:"float-compare"
      {|poly "=" on	floats|}
  in
  Alcotest.(check string)
    "escaped object"
    {|{"file":"lib/a.ml","line":3,"col":7,"rule":"float-compare","msg":"poly \"=\" on\tfloats","baseline":"fresh"}|}
    (Finding.to_json ~baseline_status:"fresh" f)

let test_catalog () =
  Alcotest.(check (list string))
    "rule catalog"
    [
      "determinism";
      "exn-swallow";
      "mli-missing";
      "float-compare";
      "hot-alloc";
      "domain-safety";
      "stale-generation";
      "deprecated-copy";
      "serve-blocking";
    ]
    Rules.rule_ids;
  let stage_of id =
    (List.find (fun m -> m.Rules.id = id) Rules.catalog).Rules.stage
  in
  Alcotest.(check bool) "determinism is syntactic" true
    (stage_of "determinism" = Rules.Syntactic);
  Alcotest.(check bool) "domain-safety is typed" true
    (stage_of "domain-safety" = Rules.Typed);
  Alcotest.(check bool) "float-compare moved to the typed stage" true
    (stage_of "float-compare" = Rules.Typed)

let () =
  Alcotest.run "lint"
    [
      ( "syntactic",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "exn-swallow" `Quick test_exn_swallow;
          Alcotest.test_case "mli-missing" `Quick test_mli_missing;
          Alcotest.test_case "catalog" `Quick test_catalog;
        ] );
      ( "typed",
        [
          Alcotest.test_case "float-compare" `Quick test_typed_float_compare;
          Alcotest.test_case "hot-alloc" `Quick test_typed_hot_alloc;
          Alcotest.test_case "domain-safety" `Quick test_domain_safety;
          Alcotest.test_case "domain-safety waiver" `Quick test_domain_waiver;
          Alcotest.test_case "stale-generation" `Quick test_stale_generation;
          Alcotest.test_case "deprecated-copy" `Quick test_deprecated_copy;
          Alcotest.test_case "copy exemption" `Quick test_copy_exempt;
          Alcotest.test_case "serve-blocking" `Quick test_serve_blocking;
          Alcotest.test_case "cmt-missing" `Quick test_cmt_missing;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "nf.allow" `Quick test_allow_suppresses;
          Alcotest.test_case "allow justification grammar" `Quick
            test_allow_justification_parsing;
          Alcotest.test_case "wallclock exemption" `Quick
            test_wallclock_exemption;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deterministic output" `Quick
            test_output_deterministic;
          Alcotest.test_case "sorted walk" `Quick test_collect_files_sorted;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "baseline comments" `Quick
            test_baseline_preserves_comments;
          Alcotest.test_case "parse error" `Quick test_parse_error_is_finding;
          Alcotest.test_case "json findings" `Quick test_json;
        ] );
    ]
