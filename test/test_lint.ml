(* Tests for the nf_lint rules library, driven off the parse-only
   fixtures in lint_fixtures/ (fixtures are linted, never compiled). *)

module Config = Nf_lint_rules.Config
module Driver = Nf_lint_rules.Driver
module Finding = Nf_lint_rules.Finding
module Rules = Nf_lint_rules.Rules

(* dune runtest runs the binary inside test/; dune exec runs it from the
   workspace root. Accept either. *)
let fixture_dir =
  if Sys.file_exists "lint_fixtures" then "lint_fixtures"
  else Filename.concat "test" "lint_fixtures"

let fixture name = Filename.concat fixture_dir name

(* Lint one fixture with only [rule] enabled, under the strict config. *)
let lint_rule rule name =
  Driver.lint_file ~enabled:(String.equal rule) ~config:Config.strict
    (fixture name)

let rules_of findings = List.map (fun f -> f.Finding.rule) findings

let check_flags rule ~bad ~good ~expect () =
  let findings = lint_rule rule bad in
  Alcotest.(check int)
    (Printf.sprintf "%s findings in %s" rule bad)
    expect (List.length findings);
  List.iter
    (fun f ->
      Alcotest.(check string) "rule id" rule f.Finding.rule;
      Alcotest.(check string) "file" (fixture bad) f.Finding.file;
      Alcotest.(check bool) "line is positive" true (f.Finding.line > 0))
    findings;
  Alcotest.(check (list string))
    (Printf.sprintf "%s clean for %s" good rule)
    []
    (rules_of (lint_rule rule good))

let test_determinism =
  check_flags "determinism" ~bad:"bad_determinism.ml"
    ~good:"good_determinism.ml" ~expect:4

let test_float_compare =
  check_flags "float-compare" ~bad:"bad_float_compare.ml"
    ~good:"good_float_compare.ml" ~expect:4

let test_hot_alloc =
  check_flags "hot-alloc" ~bad:"bad_hot_alloc.ml" ~good:"good_hot_alloc.ml"
    ~expect:5

let test_exn_swallow =
  check_flags "exn-swallow" ~bad:"bad_exn_swallow.ml"
    ~good:"good_exn_swallow.ml" ~expect:3

let test_mli_missing () =
  let missing =
    lint_rule "mli-missing" "bad_determinism.ml" |> rules_of
  in
  Alcotest.(check (list string)) "no .mli next to fixture" [ "mli-missing" ]
    missing;
  Alcotest.(check (list string))
    "with_mli.mli satisfies the rule" []
    (rules_of (lint_rule "mli-missing" "with_mli.ml"))

let test_allow_suppresses () =
  (* Every rule enabled: the [@nf.allow] annotations must silence all of
     the deliberate violations in allow_ok.ml. *)
  let findings = Driver.lint_file ~config:Config.strict (fixture "allow_ok.ml") in
  Alcotest.(check (list string)) "allow_ok.ml lints clean" []
    (List.map Finding.to_string findings)

let test_wallclock_exemption () =
  (* Same source, exempt path policy: the wall-clock reads stop being
     findings but Random.self_init and Hashtbl.iter remain. *)
  let exempt =
    { Config.strict with Config.wallclock_exempt = (fun _ -> true) }
  in
  let findings =
    Driver.lint_file ~enabled:(String.equal "determinism") ~config:exempt
      (fixture "bad_determinism.ml")
  in
  Alcotest.(check int) "only non-wallclock findings remain" 2
    (List.length findings)

let test_output_deterministic () =
  let run () = Driver.run ~config:Config.strict [ fixture_dir ] in
  let a = run () and b = run () in
  Alcotest.(check (list string))
    "repeat runs are byte-identical"
    (List.map Finding.to_string a)
    (List.map Finding.to_string b);
  let sorted = List.sort Finding.compare a in
  Alcotest.(check (list string))
    "findings come back sorted"
    (List.map Finding.to_string sorted)
    (List.map Finding.to_string a)

let test_collect_files_sorted () =
  let files = Driver.collect_files [ fixture_dir ] in
  Alcotest.(check bool) "found the fixtures" true (List.length files >= 10);
  let sorted = List.sort_uniq compare files in
  Alcotest.(check (list string)) "walk is sorted and deduplicated" sorted files;
  List.iter
    (fun f ->
      Alcotest.(check bool)
        (f ^ " ends in .ml") true
        (Filename.check_suffix f ".ml"))
    files

let test_baseline_roundtrip () =
  let findings =
    Driver.lint_file ~enabled:(String.equal "determinism")
      ~config:Config.strict
      (fixture "bad_determinism.ml")
  in
  let keys = Driver.baseline_of_findings findings in
  let r = Driver.apply_baseline keys findings in
  Alcotest.(check int) "all findings baselined" (List.length findings)
    r.Driver.baselined;
  Alcotest.(check (list string)) "nothing fresh" []
    (List.map Finding.to_string r.Driver.fresh);
  Alcotest.(check (list string)) "nothing stale" [] r.Driver.stale;
  let r' = Driver.apply_baseline ("nosuch.ml [determinism] ghost" :: keys) findings in
  Alcotest.(check (list string))
    "unmatched entries reported stale"
    [ "nosuch.ml [determinism] ghost" ]
    r'.Driver.stale;
  let r'' = Driver.apply_baseline [] findings in
  Alcotest.(check int) "empty baseline suppresses nothing"
    (List.length findings)
    (List.length r''.Driver.fresh)

let test_parse_error_is_finding () =
  let tmp = Filename.temp_file "nf_lint_fixture" ".ml" in
  let oc = open_out tmp in
  output_string oc "let = in";
  close_out oc;
  let findings = Driver.lint_file ~config:Config.strict tmp in
  Sys.remove tmp;
  Alcotest.(check (list string)) "parse failure becomes a finding"
    [ "parse-error" ] (rules_of findings)

let test_catalog () =
  Alcotest.(check (list string))
    "rule catalog"
    [ "determinism"; "float-compare"; "hot-alloc"; "exn-swallow"; "mli-missing" ]
    Rules.rule_ids

let () =
  Alcotest.run "lint"
    [
      ( "rules",
        [
          Alcotest.test_case "determinism" `Quick test_determinism;
          Alcotest.test_case "float-compare" `Quick test_float_compare;
          Alcotest.test_case "hot-alloc" `Quick test_hot_alloc;
          Alcotest.test_case "exn-swallow" `Quick test_exn_swallow;
          Alcotest.test_case "mli-missing" `Quick test_mli_missing;
          Alcotest.test_case "catalog" `Quick test_catalog;
        ] );
      ( "suppression",
        [
          Alcotest.test_case "nf.allow" `Quick test_allow_suppresses;
          Alcotest.test_case "wallclock exemption" `Quick
            test_wallclock_exemption;
        ] );
      ( "driver",
        [
          Alcotest.test_case "deterministic output" `Quick
            test_output_deterministic;
          Alcotest.test_case "sorted walk" `Quick test_collect_files_sorted;
          Alcotest.test_case "baseline roundtrip" `Quick
            test_baseline_roundtrip;
          Alcotest.test_case "parse error" `Quick test_parse_error_is_finding;
        ] );
    ]
