(* Tests for nf_engine: event ordering, scheduling primitives, periodic
   timers, horizons and stopping. *)

module Sim = Nf_engine.Sim

let quick name f = Alcotest.test_case name `Quick f

let qcheck = QCheck_alcotest.to_alcotest

let test_time_order () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:3. (fun () -> log := 3 :: !log);
  Sim.schedule sim ~at:1. (fun () -> log := 1 :: !log);
  Sim.schedule sim ~at:2. (fun () -> log := 2 :: !log);
  Sim.run sim;
  Alcotest.(check (list int)) "ordered" [ 1; 2; 3 ] (List.rev !log);
  Alcotest.(check (float 0.)) "clock at last event" 3. (Sim.now sim);
  Alcotest.(check int) "processed" 3 (Sim.events_processed sim)

let test_fifo_ties () =
  let sim = Sim.create () in
  let log = ref [] in
  for i = 1 to 5 do
    Sim.schedule sim ~at:1. (fun () -> log := i :: !log)
  done;
  Sim.run sim;
  Alcotest.(check (list int)) "FIFO among equal times" [ 1; 2; 3; 4; 5 ]
    (List.rev !log)

let test_schedule_from_handler () =
  let sim = Sim.create () in
  let log = ref [] in
  Sim.schedule sim ~at:1. (fun () ->
      log := "a" :: !log;
      Sim.schedule_after sim ~delay:0.5 (fun () -> log := "b" :: !log));
  Sim.run sim;
  Alcotest.(check (list string)) "nested scheduling" [ "a"; "b" ] (List.rev !log);
  Alcotest.(check (float 1e-12)) "clock" 1.5 (Sim.now sim)

let test_past_rejected () =
  let sim = Sim.create () in
  Sim.schedule sim ~at:2. (fun () ->
      Alcotest.check_raises "past event names both times"
        (Invalid_argument "Sim.schedule: event in the past (at=1, now=2)")
        (fun () -> Sim.schedule sim ~at:1. (fun () -> ())));
  Sim.run sim;
  let sim2 = Sim.create () in
  Alcotest.check_raises "negative delay"
    (Invalid_argument "Sim.schedule_after: negative delay") (fun () ->
      Sim.schedule_after sim2 ~delay:(-1.) (fun () -> ()))

(* Handlers are accounted under their scheduling category when profiling
   is on; unlabeled events fall into the "event" bucket. *)
let test_profile_categories () =
  let module Profile = Nf_util.Profile in
  Profile.reset ();
  Profile.set_enabled true;
  Fun.protect
    ~finally:(fun () ->
      Profile.set_enabled false;
      Profile.reset ())
    (fun () ->
      let sim = Sim.create () in
      Sim.schedule sim ~at:1. ~cat:"alpha" (fun () -> ());
      Sim.schedule sim ~at:2. ~cat:"alpha" (fun () -> ());
      Sim.schedule sim ~at:3. ~cat:"beta" (fun () -> ());
      Sim.schedule sim ~at:4. (fun () -> ());
      Sim.run sim;
      let calls c =
        match
          List.find_opt (fun (n, _, _) -> n = c) (Profile.categories ())
        with
        | Some (_, k, _) -> k
        | None -> 0
      in
      Alcotest.(check int) "alpha handlers" 2 (calls "alpha");
      Alcotest.(check int) "beta handler" 1 (calls "beta");
      Alcotest.(check int) "default category" 1 (calls "event"))

let test_until_horizon () =
  let sim = Sim.create () in
  let fired = ref [] in
  List.iter
    (fun t -> Sim.schedule sim ~at:t (fun () -> fired := t :: !fired))
    [ 1.; 2.; 3.; 4. ];
  Sim.run ~until:2.5 sim;
  Alcotest.(check (list (float 0.))) "fired up to horizon" [ 1.; 2. ]
    (List.rev !fired);
  Alcotest.(check (float 0.)) "clock at horizon" 2.5 (Sim.now sim);
  (* Resume to the end. *)
  Sim.run sim;
  Alcotest.(check int) "all eventually fired" 4 (List.length !fired)

let test_until_inclusive () =
  let sim = Sim.create () in
  let fired = ref false in
  Sim.schedule sim ~at:2. (fun () -> fired := true);
  Sim.run ~until:2. sim;
  Alcotest.(check bool) "event exactly at the horizon fires" true !fired

let test_stop () =
  let sim = Sim.create () in
  let count = ref 0 in
  for i = 1 to 10 do
    Sim.schedule sim ~at:(float_of_int i) (fun () ->
        incr count;
        if !count = 3 then Sim.stop sim)
  done;
  Sim.run sim;
  Alcotest.(check int) "stopped after 3" 3 !count;
  Alcotest.(check int) "others pending" 7 (Sim.pending sim)

let test_periodic () =
  let sim = Sim.create () in
  let stamps = ref [] in
  Sim.periodic sim ~interval:1. (fun () -> stamps := Sim.now sim :: !stamps);
  Sim.run ~until:4.5 sim;
  Alcotest.(check (list (float 1e-12))) "periodic stamps" [ 1.; 2.; 3.; 4. ]
    (List.rev !stamps)

let test_periodic_start () =
  let sim = Sim.create () in
  let stamps = ref [] in
  Sim.periodic sim ~start:0.25 ~interval:0.5 (fun () ->
      stamps := Sim.now sim :: !stamps);
  Sim.run ~until:1.6 sim;
  Alcotest.(check (list (float 1e-12))) "custom start" [ 0.25; 0.75; 1.25 ]
    (List.rev !stamps)

let test_empty_run_sets_clock () =
  let sim = Sim.create () in
  Sim.run ~until:5. sim;
  Alcotest.(check (float 0.)) "clock advances to horizon" 5. (Sim.now sim)

let prop_events_fire_in_order =
  QCheck.Test.make ~name:"random schedules always fire in time order" ~count:200
    QCheck.(list_of_size Gen.(1 -- 50) (float_bound_inclusive 100.))
    (fun times ->
      let sim = Sim.create () in
      let fired = ref [] in
      List.iter (fun t -> Sim.schedule sim ~at:t (fun () -> fired := t :: !fired)) times;
      Sim.run sim;
      let fired = List.rev !fired in
      fired = List.stable_sort compare times)

let () =
  Alcotest.run "nf_engine"
    [
      ( "sim",
        [
          quick "time order" test_time_order;
          quick "fifo tie-break" test_fifo_ties;
          quick "schedule from handler" test_schedule_from_handler;
          quick "past events rejected" test_past_rejected;
          quick "profiling categories" test_profile_categories;
          quick "until horizon" test_until_horizon;
          quick "until is inclusive" test_until_inclusive;
          quick "stop" test_stop;
          quick "periodic" test_periodic;
          quick "periodic custom start" test_periodic_start;
          quick "empty run sets clock" test_empty_run_sets_clock;
          qcheck prop_events_fire_in_order;
        ] );
    ]
